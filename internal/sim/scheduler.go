package sim

import (
	"errors"
	"math/rand"
)

// ErrStopped is returned by Run when the simulation was halted by an
// explicit call to Stop rather than by exhausting the event queue or
// reaching the configured horizon.
var ErrStopped = errors.New("sim: simulation stopped")

// EventID identifies a scheduled event so it can be cancelled. An id
// packs a slot index and a generation stamp; the zero EventID is never
// issued, so a zero-valued id field is always safe to Cancel (a no-op).
type EventID uint64

// slot holds one scheduled event's mutable state. Slots live in a
// flat table and are recycled through a free list; the generation
// stamp distinguishes the current tenant from stale queue entries and
// stale EventIDs, which is what lets Cancel run in O(1) with no map.
type slot struct {
	fn   func()
	src  string
	gen  uint32
	live bool

	// Sharded-mode extensions. lp attributes the event to a logical
	// process (nil in the legacy single-threaded kernel); h/a/b hold a
	// mailbox message's handler triple when fn is nil, so barrier
	// insertion of cross-shard packets allocates no closures.
	lp *LP
	h  MsgHandler
	a  any
	b  any
}

func packRef(idx uint32, gen uint32) uint64 { return uint64(idx)<<32 | uint64(gen) }

func unpackRef(ref uint64) (idx uint32, gen uint32) {
	return uint32(ref >> 32), uint32(ref)
}

// compactMin is the minimum number of cancelled-but-unpopped queue
// entries before a sweep is worthwhile; below it the stale entries are
// cheaper to skip lazily at pop time than to compact eagerly.
const compactMin = 64

// Scheduler is the discrete-event engine. It is single-threaded and
// deterministic: events execute in (time, insertion) order, and all
// randomness flows through the seeded RNG it owns.
//
// The steady-state hot path is allocation-free: events are value
// entries in a slice-backed queue, callbacks live in a recycled slot
// table, and cancellation is a generation-stamp bump — no per-event
// heap object, no live-event map.
//
// The zero value is not usable; construct with NewScheduler,
// NewSchedulerQueue, or NewSchedulerWith.
type Scheduler struct {
	q       Queue
	slots   []slot
	free    []uint32
	scratch []Item // reused by compact

	now       Time
	seq       uint64
	pending   int // scheduled and not cancelled
	stale     int // cancelled entries still inside q
	rng       *rand.Rand
	stopped   bool
	processed uint64
	hook      func(at Time, src string, pending int)

	// curLP is the logical process currently executing (sharded mode
	// only; always nil in the legacy kernel). Events inherit it at
	// schedule time, RNG() resolves through it, and the observability
	// layer reads it to stamp emissions.
	curLP *LP

	// worker marks a scheduler owned by a worker shard of a ShardSet.
	// Barrier refuses to run on one: barrier operations belong to the
	// control plane (or the legacy single-threaded kernel).
	worker bool
}

// NewScheduler returns a scheduler on the default heap backend whose
// random source is seeded with seed. Two schedulers built with the
// same seed drive identical runs.
func NewScheduler(seed int64) *Scheduler {
	return NewSchedulerQueue(seed, QueueHeap)
}

// NewSchedulerQueue is NewScheduler with an explicit queue backend.
// An empty kind selects the heap. Backends are observationally
// identical: the same seed yields the same run byte-for-byte on any
// of them.
func NewSchedulerQueue(seed int64, kind QueueKind) *Scheduler {
	return NewSchedulerWith(seed, NewQueue(kind))
}

// NewSchedulerWith builds a scheduler around a caller-supplied Queue
// implementation — the extension point for experimenting with new
// backends without touching the kernel.
func NewSchedulerWith(seed int64, q Queue) *Scheduler {
	if q == nil {
		panic("sim: NewSchedulerWith with nil queue")
	}
	return &Scheduler{
		q:   q,
		rng: rand.New(rand.NewSource(seed)),
	}
}

// Now reports the current simulated time.
func (s *Scheduler) Now() Time { return s.now }

// RNG exposes the current deterministic random source. In the legacy
// kernel this is the scheduler's single global stream; in sharded
// mode it is the private stream of the logical process currently
// executing, so draw sequences are independent of the shard count.
// All model components must draw randomness from here, never from
// package-level rand, to keep runs reproducible.
func (s *Scheduler) RNG() *rand.Rand {
	if s.curLP != nil {
		return s.curLP.rng
	}
	return s.rng
}

// CurLP reports the logical process currently executing, or nil in
// the legacy single-threaded kernel (and during unattributed phases).
func (s *Scheduler) CurLP() *LP { return s.curLP }

// Barrier runs fn in control-plane barrier context. On the legacy
// kernel this is a plain call: there is one thread and one partition.
// On the sharded kernel it is meaningful only on the control
// scheduler, whose events execute at epoch barriers with every shard
// worker parked — so fn may touch partition-owned state on any shard
// directly. Barrier is the ctl-side counterpart of ShardSet.WithLP:
// the explicit, auditable form of a control-plane→partition mutation
// (simlint inventories each Barrier body as a "barrier" crossing
// instead of reporting it). Calling it on a worker shard's scheduler
// panics — worker handlers must use the message path.
func (s *Scheduler) Barrier(fn func()) {
	if s.worker {
		panic("sim: Barrier on a worker-shard scheduler; cross-partition effects from shard handlers must use the message path")
	}
	fn()
}

// Processed reports how many events have executed so far. The resource
// model uses this as a proxy for simulator workload (Table I).
func (s *Scheduler) Processed() uint64 { return s.processed }

// Pending reports how many events are queued and not cancelled.
func (s *Scheduler) Pending() int { return s.pending }

// QueueLen reports the number of entries physically inside the queue
// backend, which may exceed Pending by the number of cancelled entries
// not yet swept. The invariant QueueLen() == Pending()+stale is
// bounded: a compaction sweep runs whenever stale entries outnumber
// live ones (and exceed a small floor), so QueueLen never drifts past
// roughly twice Pending.
func (s *Scheduler) QueueLen() int { return s.q.Len() }

// SetHook installs an observer invoked once per executed event with
// the event's time, its source label, and the queue depth after the
// pop. A nil hook disables observation. The observability layer's
// scheduler profiler attaches here.
func (s *Scheduler) SetHook(hook func(at Time, src string, pending int)) {
	s.hook = hook
}

// Schedule queues fn to run after delay. A negative delay is treated as
// zero (run at the current instant, after already-queued events for it).
//
// Lifetime contract: fn outlives the scheduling frame, so it must not
// capture values it merely borrows — in particular a pooled
// *netsim.Packet received as a parameter, which its owner may recycle
// before the event fires. Capture an owned packet only to transfer
// ownership into the callback (which then releases or forwards it).
// The stalecapture analyzer enforces this statically.
func (s *Scheduler) Schedule(delay Time, fn func()) EventID {
	return s.ScheduleSrc(delay, "", fn)
}

// ScheduleSrc is Schedule with a source label attributing the event to
// a subsystem (e.g. "net.tx", "churn.epoch") for the profiler's
// per-source breakdown.
func (s *Scheduler) ScheduleSrc(delay Time, src string, fn func()) EventID {
	if delay < 0 {
		delay = 0
	}
	return s.ScheduleAtSrc(s.now+delay, src, fn)
}

// ScheduleAt queues fn to run at absolute time at. Times in the past are
// clamped to the current instant.
func (s *Scheduler) ScheduleAt(at Time, fn func()) EventID {
	return s.ScheduleAtSrc(at, "", fn)
}

// ScheduleAtSrc is ScheduleAt with a source label.
func (s *Scheduler) ScheduleAtSrc(at Time, src string, fn func()) EventID {
	if fn == nil {
		panic("sim: ScheduleAt with nil fn")
	}
	if at < s.now {
		at = s.now
	}
	s.seq++
	var idx uint32
	if n := len(s.free); n > 0 {
		idx = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		s.slots = append(s.slots, slot{gen: 1}) //simlint:allow allocfree(slab growth only when the free list is empty; steady state pops recycled slots and never allocates)
		idx = uint32(len(s.slots) - 1)
	}
	sl := &s.slots[idx]
	sl.fn, sl.src, sl.live = fn, src, true
	sl.lp = s.curLP // events run as the LP that scheduled them
	s.pending++
	ref := packRef(idx, sl.gen)
	s.q.Push(Item{At: at, Seq: s.seq, Ref: ref})
	return EventID(ref)
}

// scheduleMsg queues a mailbox message's handler triple at absolute
// time at, attributed to (and executing as) LP dst. It is the
// barrier-insertion path of the sharded runtime: storing the handler
// and its two operands directly in the slot avoids a closure
// allocation per cross-shard packet.
func (s *Scheduler) scheduleMsg(at Time, dst *LP, h MsgHandler, a, b any) {
	if at < s.now {
		at = s.now
	}
	s.seq++
	var idx uint32
	if n := len(s.free); n > 0 {
		idx = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		s.slots = append(s.slots, slot{gen: 1}) //simlint:allow allocfree(slab growth only when the free list is empty; steady state pops recycled slots and never allocates)
		idx = uint32(len(s.slots) - 1)
	}
	sl := &s.slots[idx]
	sl.fn, sl.src, sl.live = nil, "sim.msg", true
	sl.lp, sl.h, sl.a, sl.b = dst, h, a, b
	s.pending++
	s.q.Push(Item{At: at, Seq: s.seq, Ref: packRef(idx, sl.gen)})
}

// NextEventTime reports the timestamp of the earliest live pending
// event, sweeping any cancelled entries off the top. The shard
// coordinator uses it between epochs to skip empty stretches of the
// epoch grid.
func (s *Scheduler) NextEventTime() (Time, bool) {
	for s.q.Len() > 0 {
		it, _ := s.q.Peek()
		if s.refLive(it.Ref) {
			return it.At, true
		}
		s.q.Pop()
		s.stale--
	}
	return 0, false
}

// Cancel removes a scheduled event. Cancelling an event that already ran
// (or was already cancelled) is a no-op and reports false — including
// when the event's slot has since been recycled for a newer event: the
// generation stamp in the id no longer matches, so the newer tenant is
// untouched.
func (s *Scheduler) Cancel(id EventID) bool {
	idx, gen := unpackRef(uint64(id))
	if int(idx) >= len(s.slots) {
		return false
	}
	sl := &s.slots[idx]
	if !sl.live || sl.gen != gen {
		return false
	}
	s.releaseSlot(idx, sl)
	s.pending--
	s.stale++
	if s.stale > s.pending && s.stale >= compactMin {
		s.compact()
	}
	return true
}

// releaseSlot retires a slot's current tenant: the callback reference
// is dropped (so the closure is collectable immediately), the
// generation advances (invalidating outstanding ids and queue
// entries), and the slot returns to the free list.
func (s *Scheduler) releaseSlot(idx uint32, sl *slot) {
	sl.fn, sl.src, sl.live = nil, "", false
	sl.lp, sl.h, sl.a, sl.b = nil, nil, nil, nil
	sl.gen++
	if sl.gen == 0 {
		sl.gen = 1
	}
	s.free = append(s.free, idx) //simlint:allow allocfree(free-list capacity tracks the slot slab, so the push reuses spare capacity at steady state)
}

// refLive reports whether a queue entry still refers to its slot's
// current tenant.
func (s *Scheduler) refLive(ref uint64) bool {
	idx, gen := unpackRef(ref)
	sl := &s.slots[idx]
	return sl.live && sl.gen == gen
}

// compact sweeps cancelled entries out of the queue: everything is
// drained (in order) into a scratch slice, live entries are re-pushed
// with their original sequence numbers, so relative order — and
// therefore the run — is unchanged.
func (s *Scheduler) compact() {
	s.scratch = s.scratch[:0]
	for {
		it, ok := s.q.Pop()
		if !ok {
			break
		}
		if s.refLive(it.Ref) {
			s.scratch = append(s.scratch, it) //simlint:allow allocfree(compact is the rare cancellation sweep; scratch is reused across sweeps and grows at most to the live queue length)
		}
	}
	for _, it := range s.scratch {
		s.q.Push(it)
	}
	s.stale = 0
}

// Stop halts the run loop after the currently-executing event returns.
func (s *Scheduler) Stop() { s.stopped = true }

// Run executes events until the queue drains, until an event at a time
// strictly greater than until would execute, or until Stop is called.
// On a Stop it returns ErrStopped; otherwise nil. The clock is left at
// the later of its current value and until when the horizon is reached.
func (s *Scheduler) Run(until Time) error {
	if err := s.run(until); err != nil {
		return err
	}
	if s.now < until {
		s.now = until
	}
	return nil
}

// RunAll executes events until the queue drains or Stop is called, with
// no time horizon. The clock is left at the time of the last executed
// event. Useful in tests.
func (s *Scheduler) RunAll() error {
	return s.run(Time(int64(^uint64(0) >> 1)))
}

func (s *Scheduler) run(until Time) error {
	s.stopped = false
	//simlint:allow allocfree(the deferred reset closure is built once per Run invocation, not per event)
	defer func() { s.curLP = nil }() // no attribution leaks out of the loop
	for s.q.Len() > 0 {
		if s.stopped {
			return ErrStopped
		}
		it, _ := s.q.Peek()
		idx, gen := unpackRef(it.Ref)
		sl := &s.slots[idx]
		if !sl.live || sl.gen != gen {
			// Cancelled entry surfacing at the top: discard lazily,
			// regardless of horizon.
			s.q.Pop()
			s.stale--
			continue
		}
		if it.At > until {
			break
		}
		s.q.Pop()
		fn, src := sl.fn, sl.src
		lp, h, a, b := sl.lp, sl.h, sl.a, sl.b
		s.releaseSlot(idx, sl)
		s.pending--
		s.now = it.At
		s.processed++
		if s.hook != nil {
			s.hook(it.At, src, s.pending)
		}
		s.curLP = lp
		if fn != nil {
			fn()
		} else {
			h.HandleMsg(it.At, a, b)
		}
	}
	return nil
}
