package sim

import (
	"container/heap"
	"errors"
	"math/rand"
)

// ErrStopped is returned by Run when the simulation was halted by an
// explicit call to Stop rather than by exhausting the event queue or
// reaching the configured horizon.
var ErrStopped = errors.New("sim: simulation stopped")

// EventID identifies a scheduled event so it can be cancelled.
type EventID uint64

// event is a single queue entry. seq breaks ties between events that are
// scheduled for the same instant so that insertion order is preserved —
// the same FIFO-within-timestamp guarantee NS-3's scheduler provides.
type event struct {
	at     Time
	seq    uint64
	id     EventID
	fn     func()
	src    string
	cancel bool
}

// eventQueue implements heap.Interface ordered by (time, seq).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

func (q *eventQueue) Push(x any) { *q = append(*q, x.(*event)) }

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}

// Scheduler is the discrete-event engine. It is single-threaded and
// deterministic: events execute in (time, insertion) order, and all
// randomness flows through the seeded RNG it owns.
//
// The zero value is not usable; construct with NewScheduler.
type Scheduler struct {
	queue     eventQueue
	now       Time
	seq       uint64
	nextID    EventID
	live      map[EventID]*event
	rng       *rand.Rand
	stopped   bool
	processed uint64
	hook      func(at Time, src string, pending int)
}

// NewScheduler returns a scheduler whose random source is seeded with
// seed. Two schedulers built with the same seed drive identical runs.
func NewScheduler(seed int64) *Scheduler {
	return &Scheduler{
		live: make(map[EventID]*event),
		rng:  rand.New(rand.NewSource(seed)),
	}
}

// Now reports the current simulated time.
func (s *Scheduler) Now() Time { return s.now }

// RNG exposes the scheduler's deterministic random source. All model
// components must draw randomness from here, never from package-level
// rand, to keep runs reproducible.
func (s *Scheduler) RNG() *rand.Rand { return s.rng }

// Processed reports how many events have executed so far. The resource
// model uses this as a proxy for simulator workload (Table I).
func (s *Scheduler) Processed() uint64 { return s.processed }

// Pending reports how many events are queued and not cancelled.
func (s *Scheduler) Pending() int { return len(s.live) }

// SetHook installs an observer invoked once per executed event with
// the event's time, its source label, and the queue depth after the
// pop. A nil hook disables observation. The observability layer's
// scheduler profiler attaches here.
func (s *Scheduler) SetHook(hook func(at Time, src string, pending int)) {
	s.hook = hook
}

// Schedule queues fn to run after delay. A negative delay is treated as
// zero (run at the current instant, after already-queued events for it).
func (s *Scheduler) Schedule(delay Time, fn func()) EventID {
	return s.ScheduleSrc(delay, "", fn)
}

// ScheduleSrc is Schedule with a source label attributing the event to
// a subsystem (e.g. "net.tx", "churn.epoch") for the profiler's
// per-source breakdown.
func (s *Scheduler) ScheduleSrc(delay Time, src string, fn func()) EventID {
	if delay < 0 {
		delay = 0
	}
	return s.ScheduleAtSrc(s.now+delay, src, fn)
}

// ScheduleAt queues fn to run at absolute time at. Times in the past are
// clamped to the current instant.
func (s *Scheduler) ScheduleAt(at Time, fn func()) EventID {
	return s.ScheduleAtSrc(at, "", fn)
}

// ScheduleAtSrc is ScheduleAt with a source label.
func (s *Scheduler) ScheduleAtSrc(at Time, src string, fn func()) EventID {
	if fn == nil {
		panic("sim: ScheduleAt with nil fn")
	}
	if at < s.now {
		at = s.now
	}
	s.seq++
	s.nextID++
	ev := &event{at: at, seq: s.seq, id: s.nextID, fn: fn, src: src}
	heap.Push(&s.queue, ev)
	s.live[ev.id] = ev
	return ev.id
}

// Cancel removes a scheduled event. Cancelling an event that already ran
// (or was already cancelled) is a no-op and reports false.
func (s *Scheduler) Cancel(id EventID) bool {
	ev, ok := s.live[id]
	if !ok {
		return false
	}
	ev.cancel = true
	delete(s.live, id)
	return true
}

// Stop halts the run loop after the currently-executing event returns.
func (s *Scheduler) Stop() { s.stopped = true }

// Run executes events until the queue drains, until an event at a time
// strictly greater than until would execute, or until Stop is called.
// On a Stop it returns ErrStopped; otherwise nil. The clock is left at
// the later of its current value and until when the horizon is reached.
func (s *Scheduler) Run(until Time) error {
	if err := s.run(until); err != nil {
		return err
	}
	if s.now < until {
		s.now = until
	}
	return nil
}

// RunAll executes events until the queue drains or Stop is called, with
// no time horizon. The clock is left at the time of the last executed
// event. Useful in tests.
func (s *Scheduler) RunAll() error {
	return s.run(Time(int64(^uint64(0) >> 1)))
}

func (s *Scheduler) run(until Time) error {
	s.stopped = false
	for len(s.queue) > 0 {
		if s.stopped {
			return ErrStopped
		}
		ev := s.queue[0]
		if ev.at > until {
			break
		}
		heap.Pop(&s.queue)
		if ev.cancel {
			continue
		}
		delete(s.live, ev.id)
		s.now = ev.at
		s.processed++
		if s.hook != nil {
			s.hook(ev.at, ev.src, len(s.live))
		}
		ev.fn()
	}
	return nil
}
