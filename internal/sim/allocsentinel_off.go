//go:build !simdebug

package sim

// Release build: the allocation sentinel is disarmed. AllocSentinel
// still runs fn — callers may rely on its side effects — but reports
// zero without touching runtime.ReadMemStats, whose stop-the-world
// reads have no place in a release binary.
//
// Build with -tags simdebug to arm the sentinel (allocsentinel_on.go)
// and have it report the true MemStats.Mallocs delta. The allocfree
// static analyzer (internal/lint) enforces the same contract at
// compile time; the sentinel cross-validates it at runtime.
func AllocSentinel(fn func()) uint64 {
	fn()
	return 0
}

// SentinelEnabled reports whether this binary carries the simdebug
// allocation sentinel.
func SentinelEnabled() bool { return false }
