package sim

// Ticker repeatedly invokes a callback at a fixed simulated period until
// stopped. It is the building block for periodic behaviours such as the
// DHCPv6 exploit script, churn epochs, and daemon polling loops.
type Ticker struct {
	sched   *Scheduler
	period  Time
	fn      func()
	pending EventID
	running bool

	// Source labels the ticker's events for the scheduler profiler's
	// per-source breakdown. Optional; set before Start.
	Source string
}

// NewTicker creates a ticker bound to sched that fires fn every period.
// The ticker starts stopped; call Start.
//
// fn is subject to the same lifetime contract as Scheduler.Schedule
// callbacks — and more so, since it fires repeatedly: it must not
// capture borrowed pooled values (see stalecapture in internal/lint).
func NewTicker(sched *Scheduler, period Time, fn func()) *Ticker {
	if period <= 0 {
		panic("sim: ticker period must be positive")
	}
	if fn == nil {
		panic("sim: ticker with nil fn")
	}
	return &Ticker{sched: sched, period: period, fn: fn}
}

// Start schedules the first tick one period from now. Starting a running
// ticker is a no-op.
func (t *Ticker) Start() {
	if t.running {
		return
	}
	t.running = true
	t.arm()
}

// StartImmediate fires the first tick at the current instant instead of
// one period from now.
func (t *Ticker) StartImmediate() {
	if t.running {
		return
	}
	t.running = true
	t.pending = t.sched.ScheduleSrc(0, t.Source, t.tick)
}

// Stop cancels any pending tick. The ticker may be restarted.
func (t *Ticker) Stop() {
	if !t.running {
		return
	}
	t.running = false
	t.sched.Cancel(t.pending)
}

// Running reports whether the ticker is armed.
func (t *Ticker) Running() bool { return t.running }

func (t *Ticker) arm() {
	t.pending = t.sched.ScheduleSrc(t.period, t.Source, t.tick)
}

func (t *Ticker) tick() {
	if !t.running {
		return
	}
	t.fn()
	if t.running { // fn may have stopped us
		t.arm()
	}
}
