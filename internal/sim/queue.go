package sim

import "fmt"

// Item is one scheduler queue entry. Items are plain values: the queue
// backends store them in slices, never behind per-event pointers, so
// the steady-state event loop performs no heap allocation. Ref packs
// the scheduler's (slot, generation) handle and is opaque to queues.
type Item struct {
	At  Time
	Seq uint64
	Ref uint64
}

// itemLess orders items by (time, insertion sequence): the same
// FIFO-within-timestamp total order NS-3's schedulers guarantee. The
// order is total — Seq is unique — so every Queue backend pops the
// exact same sequence, which is what makes backends interchangeable
// under the byte-identical determinism harness.
func itemLess(a, b Item) bool {
	if a.At != b.At {
		return a.At < b.At
	}
	return a.Seq < b.Seq
}

// Queue is a pluggable priority-queue backend for the Scheduler,
// mirroring NS-3's scheduler family (ListScheduler, MapScheduler,
// HeapScheduler, CalendarScheduler). Implementations must pop items in
// exactly itemLess order and must not retain popped Items.
//
// A Queue is single-threaded, like the Scheduler that owns it.
type Queue interface {
	// Push inserts an item.
	Push(Item)
	// Pop removes and returns the minimum item, in itemLess order.
	Pop() (Item, bool)
	// Peek returns the minimum item without removing it.
	Peek() (Item, bool)
	// Len reports how many items are queued, including entries whose
	// events were cancelled but not yet swept.
	Len() int
}

// QueueKind names a built-in Queue backend for configs and flags.
type QueueKind string

// Built-in queue backends.
const (
	// QueueHeap is a slice-backed 4-ary min-heap — the default. A
	// 4-ary heap halves tree depth versus the binary container/heap
	// and keeps children in one cache line.
	QueueHeap QueueKind = "heap"
	// QueueCalendar is a calendar queue, the analogue of NS-3's
	// CalendarScheduler: amortized O(1) push/pop when event times are
	// roughly uniform, at the cost of a day-width heuristic.
	QueueCalendar QueueKind = "calendar"
)

// ParseQueueKind converts a CLI/config string into a QueueKind. The
// empty string selects the default heap backend.
func ParseQueueKind(s string) (QueueKind, error) {
	switch QueueKind(s) {
	case "", QueueHeap:
		return QueueHeap, nil
	case QueueCalendar:
		return QueueCalendar, nil
	}
	return "", fmt.Errorf("sim: unknown queue kind %q (heap|calendar)", s)
}

// NewQueue constructs a built-in backend. An empty kind selects the
// heap.
func NewQueue(kind QueueKind) Queue {
	switch kind {
	case "", QueueHeap:
		return newHeapQueue()
	case QueueCalendar:
		return newCalendarQueue()
	}
	panic(fmt.Sprintf("sim: unknown queue kind %q", kind))
}

// heapQueue is a slice-backed 4-ary min-heap of value items. Compared
// with container/heap it avoids the interface boxing, the per-push
// allocation, and half the levels.
type heapQueue struct {
	a []Item
}

func newHeapQueue() *heapQueue { return &heapQueue{} }

func (q *heapQueue) Len() int { return len(q.a) }

func (q *heapQueue) Peek() (Item, bool) {
	if len(q.a) == 0 {
		return Item{}, false
	}
	return q.a[0], true
}

func (q *heapQueue) Push(it Item) {
	q.a = append(q.a, it) //simlint:allow allocfree(heap slab doubling is amortized O(1) per event; a warmed queue pushes into spare capacity)
	i := len(q.a) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !itemLess(it, q.a[p]) {
			break
		}
		q.a[i] = q.a[p]
		i = p
	}
	q.a[i] = it
}

func (q *heapQueue) Pop() (Item, bool) {
	n := len(q.a)
	if n == 0 {
		return Item{}, false
	}
	top := q.a[0]
	last := q.a[n-1]
	q.a = q.a[:n-1]
	n--
	if n > 0 {
		i := 0
		for {
			c := i<<2 + 1
			if c >= n {
				break
			}
			best := c
			hi := c + 4
			if hi > n {
				hi = n
			}
			for j := c + 1; j < hi; j++ {
				if itemLess(q.a[j], q.a[best]) {
					best = j
				}
			}
			if !itemLess(q.a[best], last) {
				break
			}
			q.a[i] = q.a[best]
			i = best
		}
		q.a[i] = last
	}
	return top, true
}
