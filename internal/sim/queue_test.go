package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

var queueKinds = []QueueKind{QueueHeap, QueueCalendar}

func TestParseQueueKind(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want QueueKind
		ok   bool
	}{
		{"", QueueHeap, true},
		{"heap", QueueHeap, true},
		{"calendar", QueueCalendar, true},
		{"list", "", false},
		{"HEAP", "", false},
	} {
		got, err := ParseQueueKind(tc.in)
		if tc.ok && (err != nil || got != tc.want) {
			t.Errorf("ParseQueueKind(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
		if !tc.ok && err == nil {
			t.Errorf("ParseQueueKind(%q) accepted", tc.in)
		}
	}
}

// TestQueueBackendsPopIdenticalOrder: any interleaving of pushes and
// pops yields the exact same item sequence from every backend — the
// property that makes backends swappable without changing a run.
func TestQueueBackendsPopIdenticalOrder(t *testing.T) {
	f := func(ops []uint32) bool {
		qs := make([]Queue, len(queueKinds))
		for i, k := range queueKinds {
			qs[i] = NewQueue(k)
		}
		seq := uint64(0)
		lastAt := Time(0)
		var popped [][]Item
		popped = make([][]Item, len(qs))
		for _, op := range ops {
			if op%4 == 0 && qs[0].Len() > 0 {
				for i, q := range qs {
					it, ok := q.Pop()
					if !ok {
						return false
					}
					popped[i] = append(popped[i], it)
					lastAt = it.At
				}
				continue
			}
			seq++
			// Times never precede the latest pop, mirroring the
			// scheduler's clamp-to-now rule.
			it := Item{At: lastAt + Time(op%977), Seq: seq, Ref: uint64(op)}
			for _, q := range qs {
				q.Push(it)
			}
		}
		for qs[0].Len() > 0 {
			for i, q := range qs {
				it, ok := q.Pop()
				if !ok {
					return false
				}
				popped[i] = append(popped[i], it)
			}
		}
		for i := 1; i < len(popped); i++ {
			if len(popped[i]) != len(popped[0]) {
				return false
			}
			for j := range popped[0] {
				if popped[i][j] != popped[0][j] {
					return false
				}
			}
		}
		// And the shared sequence must be itemLess-sorted.
		for j := 1; j < len(popped[0]); j++ {
			if itemLess(popped[0][j], popped[0][j-1]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestCalendarFarFutureAndTies exercises the calendar queue's two slow
// paths: a year-scan miss (every event more than a year of buckets
// away) and many ties sharing one bucket.
func TestCalendarFarFutureAndTies(t *testing.T) {
	q := NewQueue(QueueCalendar)
	q.Push(Item{At: 1 << 40, Seq: 1})
	q.Push(Item{At: 1 << 50, Seq: 2})
	if it, _ := q.Peek(); it.Seq != 1 {
		t.Fatalf("far-future Peek = %+v, want Seq 1", it)
	}
	for s := uint64(3); s < 40; s++ {
		q.Push(Item{At: 1 << 40, Seq: s})
	}
	wantSeqs := append([]uint64{1}, func() []uint64 {
		var v []uint64
		for s := uint64(3); s < 40; s++ {
			v = append(v, s)
		}
		return v
	}()...)
	wantSeqs = append(wantSeqs, 2)
	for i, want := range wantSeqs {
		it, ok := q.Pop()
		if !ok || it.Seq != want {
			t.Fatalf("pop %d = %+v, ok=%v, want Seq %d", i, it, ok, want)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("pop from empty calendar succeeded")
	}
}

// TestQueueLenPendingInvariant pins the drift fix: cancelled-but-
// unpopped entries are visible in QueueLen but never in Pending, and a
// compaction sweep bounds the gap once stale entries outnumber live
// ones.
func TestQueueLenPendingInvariant(t *testing.T) {
	s := NewScheduler(1)
	const n = 100
	ids := make([]EventID, n)
	for i := 0; i < n; i++ {
		ids[i] = s.Schedule(Time(i)*Millisecond, func() {})
	}
	if s.Pending() != n || s.QueueLen() != n {
		t.Fatalf("after schedule: Pending=%d QueueLen=%d, want %d/%d", s.Pending(), s.QueueLen(), n, n)
	}
	// Cancel 40: stale (40) stays below live (60), so no sweep runs and
	// the gap must be visible.
	for i := 0; i < 40; i++ {
		if !s.Cancel(ids[i]) {
			t.Fatalf("Cancel(%d) failed", i)
		}
	}
	if s.Pending() != 60 {
		t.Fatalf("Pending = %d, want 60", s.Pending())
	}
	if s.QueueLen() != 100 {
		t.Fatalf("QueueLen = %d, want 100 (stale entries not yet swept)", s.QueueLen())
	}
	// Cancel 25 more. The sweep fires at the 64th cancel (stale 64 >
	// live 36, and at the compactMin floor), leaving the 65th as the
	// only stale entry afterwards.
	for i := 40; i < 65; i++ {
		if !s.Cancel(ids[i]) {
			t.Fatalf("Cancel(%d) failed", i)
		}
	}
	if s.Pending() != 35 {
		t.Fatalf("Pending = %d, want 35", s.Pending())
	}
	if s.QueueLen() != 36 {
		t.Fatalf("QueueLen = %d, want 36 (compaction at 64th cancel + 1 stale)", s.QueueLen())
	}
	// The survivors still run, and both counters drain to zero.
	if err := s.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if s.Pending() != 0 || s.QueueLen() != 0 {
		t.Fatalf("after drain: Pending=%d QueueLen=%d", s.Pending(), s.QueueLen())
	}
	if got := s.Processed(); got != 35 {
		t.Fatalf("Processed = %d, want 35", got)
	}
}

// TestCompactionPreservesOrder: a sweep in the middle of a workload
// must not reorder survivors, on either backend.
func TestCompactionPreservesOrder(t *testing.T) {
	for _, kind := range queueKinds {
		s := NewSchedulerQueue(9, kind)
		const n = 300
		var order []int
		ids := make([]EventID, n)
		for i := 0; i < n; i++ {
			i := i
			ids[i] = s.Schedule(Time(n-i)*Millisecond, func() { order = append(order, i) })
		}
		for i := 0; i < n; i += 2 { // cancel every even id → sweep triggers
			s.Cancel(ids[i])
		}
		if err := s.RunAll(); err != nil {
			t.Fatalf("[%s] RunAll: %v", kind, err)
		}
		if len(order) != n/2 {
			t.Fatalf("[%s] ran %d, want %d", kind, len(order), n/2)
		}
		// Delay was (n-i) ms, so survivors (odd i) must run in
		// descending-i order.
		for j := 1; j < len(order); j++ {
			if order[j] >= order[j-1] {
				t.Fatalf("[%s] order[%d..] = %d,%d not descending", kind, j-1, order[j-1], order[j])
			}
		}
	}
}

// TestCancelFiredAndReusedIDs pins the generation-stamp semantics: an
// id goes dead the moment its event fires or is cancelled, and stays
// dead even after its slot is recycled for newer events.
func TestCancelFiredAndReusedIDs(t *testing.T) {
	s := NewScheduler(1)

	fired := s.Schedule(Millisecond, func() {})
	if err := s.RunAll(); err != nil {
		t.Fatal(err)
	}
	if s.Cancel(fired) {
		t.Fatal("Cancel of already-fired id succeeded")
	}

	// The slot of `fired` is on the free list; this reuses it.
	ranB := false
	b := s.Schedule(Millisecond, func() { ranB = true })
	if b == fired {
		t.Fatal("reused slot issued an identical id (generation did not advance)")
	}
	if s.Cancel(fired) {
		t.Fatal("stale id cancelled the slot's new tenant")
	}

	// Cancel-then-reuse: cancelling the old id again must not kill c.
	if !s.Cancel(b) {
		t.Fatal("Cancel(b) failed")
	}
	ranC := false
	c := s.Schedule(Millisecond, func() { ranC = true })
	if s.Cancel(b) {
		t.Fatal("doubly-cancelled id reported success after slot reuse")
	}
	if s.Cancel(fired) {
		t.Fatal("ancient id still live")
	}
	if err := s.RunAll(); err != nil {
		t.Fatal(err)
	}
	if ranB {
		t.Fatal("cancelled event ran")
	}
	if !ranC {
		t.Fatal("live event did not run")
	}
	_ = c

	// The zero EventID (a Ticker's zero-value pending field) is never
	// issued and never cancels anything.
	if s.Cancel(0) {
		t.Fatal("Cancel(0) succeeded")
	}
}

// TestPropertyFIFOWithinTimestamp: events sharing a timestamp run in
// schedule order, on every backend.
func TestPropertyFIFOWithinTimestamp(t *testing.T) {
	for _, kind := range queueKinds {
		kind := kind
		f := func(slots []uint8) bool {
			s := NewSchedulerQueue(3, kind)
			var got []int
			for i, slot := range slots {
				i := i
				// Few distinct timestamps → many ties.
				s.Schedule(Time(slot%5)*Second, func() { got = append(got, i) })
			}
			if err := s.RunAll(); err != nil {
				return false
			}
			if len(got) != len(slots) {
				return false
			}
			// Expected order: stable sort by timestamp = for equal
			// timestamps, ascending schedule index.
			seen := make(map[uint8][]int)
			for _, i := range got {
				b := slots[i] % 5
				ns := seen[b]
				if len(ns) > 0 && ns[len(ns)-1] > i {
					return false
				}
				seen[b] = append(ns, i)
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
			t.Fatalf("[%s] %v", kind, err)
		}
	}
}

// TestBackendsIdenticalRuns drives a randomized schedule/cancel/nested
// workload on both backends and requires identical execution traces —
// the in-package version of the cross-backend artifact test in
// internal/core.
func TestBackendsIdenticalRuns(t *testing.T) {
	run := func(kind QueueKind) []Time {
		s := NewSchedulerQueue(11, kind)
		var trace []Time
		var ids []EventID
		var step func()
		n := 0
		step = func() {
			trace = append(trace, s.Now())
			n++
			if n > 2000 {
				return
			}
			r := s.RNG()
			for i := 0; i < 1+r.Intn(3); i++ {
				ids = append(ids, s.Schedule(Time(r.Intn(5000))*Microsecond, step))
			}
			if len(ids) > 0 && r.Intn(3) == 0 {
				s.Cancel(ids[r.Intn(len(ids))])
			}
		}
		s.Schedule(0, step)
		if err := s.Run(3 * Second); err != nil {
			t.Fatalf("[%s] Run: %v", kind, err)
		}
		return trace
	}
	heap := run(QueueHeap)
	cal := run(QueueCalendar)
	if len(heap) != len(cal) {
		t.Fatalf("trace lengths differ: heap %d, calendar %d", len(heap), len(cal))
	}
	for i := range heap {
		if heap[i] != cal[i] {
			t.Fatalf("traces diverge at event %d: heap %v, calendar %v", i, heap[i], cal[i])
		}
	}
}

// nop is the benchmark callback: package-level so every Schedule call
// passes the same function value and the benchmark measures the
// kernel, not closure allocation.
func nop() {}

func BenchmarkSchedule(b *testing.B) {
	for _, kind := range queueKinds {
		b.Run(string(kind), func(b *testing.B) {
			s := NewSchedulerQueue(1, kind)
			rng := rand.New(rand.NewSource(2))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Schedule(Time(rng.Intn(1000))*Microsecond, nop)
			}
		})
	}
}

func BenchmarkScheduleCancel(b *testing.B) {
	for _, kind := range queueKinds {
		b.Run(string(kind), func(b *testing.B) {
			s := NewSchedulerQueue(1, kind)
			rng := rand.New(rand.NewSource(2))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				id := s.Schedule(Time(rng.Intn(1000))*Microsecond, nop)
				s.Cancel(id)
			}
		})
	}
}

func BenchmarkRunDrain(b *testing.B) {
	for _, kind := range queueKinds {
		b.Run(string(kind), func(b *testing.B) {
			s := NewSchedulerQueue(1, kind)
			rng := rand.New(rand.NewSource(2))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Schedule(Time(rng.Intn(1000))*Microsecond, nop)
				if i%1024 == 1023 {
					if err := s.RunAll(); err != nil {
						b.Fatal(err)
					}
				}
			}
			if err := s.RunAll(); err != nil {
				b.Fatal(err)
			}
		})
	}
}
