//go:build simdebug

package sim

import "runtime"

// AllocSentinel is the runtime half of the zero-alloc hot-path
// contract: it reports the exact number of heap allocations fn
// performs. The allocfree static analyzer (internal/lint) proves
// allocation-freedom over the call graph at compile time; the
// sentinel cross-validates it against what the runtime actually did,
// catching the dynamic cases the analyzer deliberately stays silent
// on (calls through stored func values, third-party code).
//
// The count comes from the MemStats.Mallocs delta around fn with a GC
// forced first, so a concurrent sweep cannot attribute its own
// bookkeeping to fn. Callers measuring steady state should warm their
// pools and slabs before handing fn to the sentinel.
func AllocSentinel(fn func()) uint64 {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	fn()
	runtime.ReadMemStats(&after)
	return after.Mallocs - before.Mallocs
}

// SentinelEnabled reports whether this binary carries the simdebug
// allocation sentinel.
func SentinelEnabled() bool { return true }
