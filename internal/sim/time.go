// Package sim provides the discrete-event simulation kernel underlying
// DDoSim. It plays the role NS-3's core module plays in the paper: a
// virtual clock, an ordered event queue, and a deterministic random
// number source, so that identical configurations reproduce identical
// runs bit-for-bit.
package sim

import (
	"fmt"
	"time"
)

// Time is a point in simulated time, measured in nanoseconds from the
// start of the simulation. It mirrors NS-3's ns3::Time with nanosecond
// resolution.
type Time int64

// Common time constants expressed as simulated durations.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
	Minute           = 60 * Second
)

// FromDuration converts a time.Duration into a simulated Time offset.
func FromDuration(d time.Duration) Time {
	return Time(d.Nanoseconds())
}

// Duration converts t, interpreted as an offset, into a time.Duration.
func (t Time) Duration() time.Duration {
	return time.Duration(int64(t))
}

// Seconds reports t as a floating-point number of seconds.
func (t Time) Seconds() float64 {
	return float64(t) / float64(Second)
}

// Milliseconds reports t as a floating-point number of milliseconds.
func (t Time) Milliseconds() float64 {
	return float64(t) / float64(Millisecond)
}

// Seconds builds a Time from a floating-point number of seconds.
func Seconds(s float64) Time {
	return Time(s * float64(Second))
}

// String renders the time in seconds with millisecond precision, the
// format used throughout experiment logs.
func (t Time) String() string {
	return fmt.Sprintf("%.3fs", t.Seconds())
}
