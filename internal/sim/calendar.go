package sim

// calendarQueue is a calendar queue (Brown 1988), the structure behind
// NS-3's CalendarScheduler: a circular array of "day" buckets, each a
// small sorted slice, indexed by event time modulo the "year". With
// event times spread roughly uniformly — the common case for a DES
// whose load is periodic traffic — push and pop are amortized O(1).
//
// Correctness does not depend on the width heuristic: the year scan
// pops the true (time, seq) minimum among in-year events, out-of-year
// events are provably later, and ties share a bucket where insertion
// keeps them seq-sorted. A bad width only costs speed.
type calendarQueue struct {
	buckets [][]Item
	width   Time // duration of one bucket's day
	size    int

	// Search state: lastBucket's current window is
	// [bucketTop-width, bucketTop), and every queued item is at or
	// after that window's start. lastAt is the priority of the most
	// recently popped item; the Scheduler never pushes earlier than
	// the last pop (it clamps to now), which maintains the invariant.
	lastBucket int
	bucketTop  Time
	lastAt     Time
}

// calendar sizing: buckets double above two items per bucket and halve
// below one-half, so the mean bucket stays O(1) items deep.
const calendarMinBuckets = 2

func newCalendarQueue() *calendarQueue {
	c := &calendarQueue{}
	c.setShape(calendarMinBuckets, 1, 0)
	return c
}

// setShape installs a bucket count and day width and re-anchors the
// search state at time start.
func (c *calendarQueue) setShape(n int, width Time, start Time) {
	c.buckets = make([][]Item, n) //simlint:allow allocfree(bucket-array rebuild happens only on calendar resize, which doubles — amortized O(1) per event)
	c.width = width
	c.lastAt = start
	c.lastBucket = int((start / width) % Time(n))
	c.bucketTop = (start/width)*width + width
}

func (c *calendarQueue) Len() int { return c.size }

func (c *calendarQueue) Push(it Item) {
	if it.At < c.lastAt {
		// Defensive rewind: the scheduler clamps schedules to now, so
		// this only happens when a drained queue is refilled (heap
		// compaction re-pushes in ascending order). Re-anchor the scan
		// so the invariant "no item before the current window" holds.
		c.lastAt = it.At
		c.lastBucket = int((it.At / c.width) % Time(len(c.buckets)))
		c.bucketTop = (it.At/c.width)*c.width + c.width
	}
	c.insert(it)
	if c.size > 2*len(c.buckets) {
		c.resize(2 * len(c.buckets))
	}
}

// insert places an item in its day bucket, keeping the bucket sorted.
// Insertion scans from the tail: a DES pushes mostly near-future
// times, which land at or near the end.
func (c *calendarQueue) insert(it Item) {
	i := int((it.At / c.width) % Time(len(c.buckets)))
	b := append(c.buckets[i], it) //simlint:allow allocfree(day-bucket growth is amortized; buckets keep their capacity across days and stop growing once warmed)
	j := len(b) - 1
	for j > 0 && itemLess(it, b[j-1]) {
		b[j] = b[j-1]
		j--
	}
	b[j] = it
	c.buckets[i] = b
	c.size++
}

// findMin locates the bucket holding the minimum item and the window
// top at which the scan found it. It never mutates state, so Peek is
// safe to interleave with pushes of earlier times.
func (c *calendarQueue) findMin() (bucket int, top Time) {
	n := len(c.buckets)
	i := c.lastBucket
	top = c.bucketTop
	for k := 0; k < n; k++ {
		if b := c.buckets[i]; len(b) > 0 && b[0].At < top {
			return i, top
		}
		i++
		if i == n {
			i = 0
		}
		top += c.width
	}
	// Every event is more than a year out: direct search over bucket
	// minima. Equal times share a bucket, so comparing heads is a
	// total order.
	best := -1
	for idx := range c.buckets {
		b := c.buckets[idx]
		if len(b) == 0 {
			continue
		}
		if best < 0 || itemLess(b[0], c.buckets[best][0]) {
			best = idx
		}
	}
	at := c.buckets[best][0].At
	return best, (at/c.width)*c.width + c.width
}

func (c *calendarQueue) Peek() (Item, bool) {
	if c.size == 0 {
		return Item{}, false
	}
	i, _ := c.findMin()
	return c.buckets[i][0], true
}

func (c *calendarQueue) Pop() (Item, bool) {
	if c.size == 0 {
		return Item{}, false
	}
	i, top := c.findMin()
	b := c.buckets[i]
	it := b[0]
	copy(b, b[1:])
	b[len(b)-1] = Item{}
	c.buckets[i] = b[:len(b)-1]
	c.size--
	c.lastBucket = i
	c.bucketTop = top
	c.lastAt = it.At
	if n := len(c.buckets); n > calendarMinBuckets && c.size < n/2 {
		c.resize(n / 2)
	}
	return it, true
}

// resize redistributes every item across n buckets, re-estimating the
// day width as the mean spacing of the queued times. The estimate is a
// pure function of queue content, preserving determinism.
func (c *calendarQueue) resize(n int) {
	if n < calendarMinBuckets {
		n = calendarMinBuckets
	}
	if n == len(c.buckets) {
		return
	}
	old := c.buckets
	var lo, hi Time
	first := true
	for _, b := range old {
		for _, it := range b {
			if first {
				lo, hi = it.At, it.At
				first = false
				continue
			}
			if it.At < lo {
				lo = it.At
			}
			if it.At > hi {
				hi = it.At
			}
		}
	}
	width := Time(1)
	if c.size > 1 {
		if width = (hi - lo) / Time(c.size); width < 1 {
			width = 1
		}
	}
	c.setShape(n, width, c.lastAt)
	c.size = 0
	for _, b := range old {
		for _, it := range b {
			c.insert(it)
		}
	}
}
