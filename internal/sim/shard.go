package sim

import (
	"fmt"
	"math/rand"
	"sort"
	"sync/atomic"
)

// This file implements the sharded parallel event kernel: a
// conservative (lookahead-synchronized) parallel discrete-event
// runtime in the tradition of Chandy-Misra-Bryant null-message-free
// BSP variants. The topology is partitioned into logical processes
// (LPs); each shard owns a set of LPs, a private Scheduler (with its
// own Queue backend), and one worker goroutine. Shards advance in
// global epochs of width L — the lookahead, the minimum cross-LP
// link latency — and exchange timestamped messages through
// per-(src,dst) mailbox lanes that are drained at epoch barriers in a
// deterministic merge order: (timestamp, source LP, per-source
// sequence).
//
// Determinism contract: a run's observable behaviour is a function of
// (seed, topology) only — NOT of the shard count. Three mechanisms
// make shard count unobservable:
//
//  1. Per-LP RNG streams, split from the root seed by stable LP
//     index, so no draw depends on cross-LP interleaving.
//  2. ALL cross-LP sends go through the mailbox path, even when both
//     LPs happen to share a shard (including the single-shard case),
//     so delivery timing and ordering never depend on co-location.
//  3. Mailbox messages are sorted by the partition-independent key
//     (At, SrcLP, SrcSeq) before insertion, and within one scheduler
//     the (time, insertion-seq) total order then reproduces that key
//     order; events of *different* LPs that interleave differently
//     across shard counts touch disjoint state (the confinement
//     property established by the shardconfine/crossnode analyzers),
//     so their relative order is unobservable.
//
// The conservative safety argument: a message sent at time s carries
// a delivery time At >= s + L. The sender's epoch is [t_k, t_k+L), so
// At >= t_k + L — at or beyond the epoch end. Collected at the next
// barrier, the message can never be in the receiver's past.
//
// Control plane: besides the worker shards, a ShardSet owns one extra
// "control" shard with its own scheduler but no goroutine. Its events
// — churn evaluation, fault injection, watchers, periodic sampling —
// are executed inline by the coordinator at epoch barriers, with the
// whole world stopped, so control code may read and mutate any
// shard's state directly, with zero routing or shadow-state
// complexity. A control event with timestamp t runs at the first
// barrier B >= t with Now() == t (the exact drawn timestamp), so its
// observable timing is preserved; only its *view* of the partition
// state lags by < L, the same conservative slack every cross-LP
// message already carries. Messages TO the control LP are exempt from
// the lookahead floor — a worker LP may send one carrying its current
// timestamp, and it is guaranteed to surface at the next barrier,
// which is the earliest moment control code could run anyway.

// LP is a logical process: the unit of partitioning and the unit of
// determinism. Every simulation entity (a network node and everything
// that executes "on" it) belongs to exactly one LP; an LP belongs to
// exactly one shard for the lifetime of a run.
type LP struct {
	idx     uint32
	shard   *Shard
	rng     *rand.Rand
	sendSeq uint64 // per-LP message sequence, the merge-order tiebreak
	emitSeq uint64 // per-LP emission sequence for trace merging
}

// Idx reports the LP's stable index (assignment order at build time).
func (lp *LP) Idx() uint32 { return lp.idx }

// Shard reports the shard the LP is pinned to.
func (lp *LP) Shard() *Shard { return lp.shard }

// RNG exposes the LP's private random stream, split deterministically
// from the root seed by LP index. Draws from here are independent of
// shard count and of other LPs' activity.
func (lp *LP) RNG() *rand.Rand { return lp.rng }

// NextEmit returns a monotonically increasing per-LP sequence number.
// The observability layer stamps trace entries with (LP, emit-seq) so
// per-shard trace buffers merge into one deterministic order.
func (lp *LP) NextEmit() uint64 {
	lp.emitSeq++
	return lp.emitSeq
}

// MsgHandler is the delivery callback of a cross-LP message. Using an
// interface with two opaque arguments (rather than a closure) keeps
// the packet hot path allocation-free: the receiver is typically a
// long-lived object (a *netsim.NetDevice) and pointer-shaped args do
// not box.
type MsgHandler interface {
	// HandleMsg runs on the destination LP at the message timestamp.
	HandleMsg(at Time, a, b any)
}

// funcMsg adapts a closure to MsgHandler for low-rate control-plane
// messages where an allocation per message is acceptable.
type funcMsg struct{ fn func(at Time) }

func (f funcMsg) HandleMsg(at Time, _, _ any) { f.fn(at) }

// Msg is one timestamped cross-LP message in a mailbox lane.
type Msg struct {
	At  Time
	Src uint32 // sending LP index
	Seq uint64 // per-sending-LP sequence
	Dst *LP
	H   MsgHandler
	A   any
	B   any
}

// msgBefore is the deterministic merge order of mailbox messages:
// timestamp, then stable source-LP index, then the source's private
// sequence. All three components are partition-independent.
func msgBefore(a, b Msg) bool {
	if a.At != b.At {
		return a.At < b.At
	}
	if a.Src != b.Src {
		return a.Src < b.Src
	}
	return a.Seq < b.Seq
}

// Shard is one partition of the LP set: a private scheduler, the LPs
// pinned to it, and its outbound mailbox lanes. During an epoch a
// shard is touched only by its worker goroutine; between epochs only
// by the coordinator. That strict alternation is the entire locking
// discipline — there are no locks.
type Shard struct {
	id    int
	set   *ShardSet
	sched *Scheduler
	lps   []*LP

	// out[dst] is the mailbox lane toward shard dst, appended to only
	// by this shard's worker during an epoch and swapped out by the
	// coordinator at the barrier.
	out [][]Msg

	// staged holds the lane slices routed to this shard at the last
	// barrier; the worker sorts and inserts them before running the
	// next epoch.
	staged  [][]Msg
	inbox   []Msg // sort scratch, reused
	openEnd Time  // current epoch end, for the conservative send assert

	cmd  chan shardCmd
	done chan error
}

// ID reports the shard's index within its ShardSet.
func (sh *Shard) ID() int { return sh.id }

// Sched exposes the shard's private scheduler.
func (sh *Shard) Sched() *Scheduler { return sh.sched }

type shardCmd struct {
	until Time
}

// BarrierTask is a callback the coordinator runs at fixed grid times
// while every shard is quiesced at a barrier. Tasks may read and
// mutate any shard's state (the world is stopped) and may schedule
// events on any shard's scheduler; this is where the simulation's
// global control plane (periodic sampling, watchers) lives in sharded
// mode.
type BarrierTask struct {
	Every Time
	Fn    func(at Time)
	next  Time
}

// ShardSet is the sharded runtime: the shard array, the control
// shard, the LP registry, the epoch coordinator, and the barrier-task
// list.
type ShardSet struct {
	seed      int64
	lookahead Time
	shards    []*Shard
	ctl       *Shard   // control shard: drained inline at barriers, no worker
	all       []*Shard // shards + ctl, indexed by mailbox lane id
	ctlLP     *LP      // LP index 0, the control plane's identity
	lps       []*LP
	tasks     []*BarrierTask

	now     Time // barrier position: all shards quiesced at >= now
	running bool
	stopped atomic.Bool
	started bool
}

// NewShardSet builds a sharded runtime with n shards (n >= 1) whose
// schedulers use the given queue backend. lookahead is the epoch
// width: the minimum latency of any cross-LP interaction. Every
// cross-LP send must carry a delivery time at least lookahead past
// the send time; Send enforces this at runtime.
func NewShardSet(seed int64, n int, lookahead Time, kind QueueKind) *ShardSet {
	if n < 1 {
		panic("sim: NewShardSet with n < 1")
	}
	if lookahead <= 0 {
		panic("sim: NewShardSet with non-positive lookahead")
	}
	set := &ShardSet{seed: seed, lookahead: lookahead}
	set.shards = make([]*Shard, n)
	for i := range set.shards {
		sh := &Shard{
			id:    i,
			set:   set,
			sched: NewSchedulerQueue(splitSeed(seed, uint64(i)^0x5348415244), kind),
			out:   make([][]Msg, n+1),
			cmd:   make(chan shardCmd),
			done:  make(chan error),
		}
		sh.sched.worker = true
		set.shards[i] = sh
	}
	// The control shard takes lane id n. It has no worker goroutine:
	// the coordinator runs its scheduler at barriers.
	set.ctl = &Shard{
		id:  n,
		set: set,
		// Fixed stream id: the ctl scheduler's base RNG must not vary
		// with the worker shard count or fallback draws (no current LP)
		// would break shard-count invariance.
		sched: NewSchedulerQueue(splitSeed(seed, 0x63746C00), kind),
		out:   make([][]Msg, n+1),
	}
	set.all = append(append([]*Shard{}, set.shards...), set.ctl)
	// The control LP is created first so it always holds index 0,
	// independent of shard count and topology size.
	set.ctlLP = set.newLPOn(set.ctl)
	return set
}

// splitSeed derives an independent stream seed from the root seed and
// a stable index using a splitmix64 finalizer — the standard way to
// split one seed into many decorrelated streams.
func splitSeed(root int64, idx uint64) int64 {
	z := uint64(root) + 0x9e3779b97f4a7c15*(idx+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// Lookahead reports the epoch width.
func (set *ShardSet) Lookahead() Time { return set.lookahead }

// NumShards reports the shard count.
func (set *ShardSet) NumShards() int { return len(set.shards) }

// Shard returns shard i.
func (set *ShardSet) Shard(i int) *Shard { return set.shards[i] }

// NewLP registers a new logical process on shard shardID and returns
// it. LP indices are assigned in registration order, so registration
// order must itself be partition-independent (register LPs in one
// canonical order regardless of shard count). Index 0 is always the
// control LP; topology LPs start at 1.
func (set *ShardSet) NewLP(shardID int) *LP {
	if set.started {
		panic("sim: NewLP after Run")
	}
	return set.newLPOn(set.shards[shardID])
}

func (set *ShardSet) newLPOn(sh *Shard) *LP {
	lp := &LP{
		idx:   uint32(len(set.lps)),
		shard: sh,
		rng:   rand.New(rand.NewSource(splitSeed(set.seed, uint64(len(set.lps))))),
	}
	set.lps = append(set.lps, lp)
	sh.lps = append(sh.lps, lp)
	return lp
}

// Ctl returns the control shard.
func (set *ShardSet) Ctl() *Shard { return set.ctl }

// CtlSched returns the control shard's scheduler — the home of the
// simulation's control plane in sharded mode. Events scheduled here
// execute at epoch barriers with the world stopped and may touch any
// shard's state directly.
func (set *ShardSet) CtlSched() *Scheduler { return set.ctl.sched }

// CtlLP returns the control LP (always index 0). Worker-side code
// addresses the control plane by sending to it; such sends may carry
// the sender's current timestamp (no lookahead floor applies).
func (set *ShardSet) CtlLP() *LP { return set.ctlLP }

// LPs returns the LP registry in index order.
func (set *ShardSet) LPs() []*LP { return set.lps }

// WithLP runs fn with lp installed as the current LP of its shard's
// scheduler, restoring the previous attribution afterwards. Setup
// code uses this so that events scheduled (and randomness drawn)
// while building an entity are attributed to that entity's LP.
func (set *ShardSet) WithLP(lp *LP, fn func()) {
	s := lp.shard.sched
	prev := s.curLP
	s.curLP = lp
	defer func() { s.curLP = prev }()
	fn()
}

// AddTask registers a barrier task firing every period, starting at
// time period (not zero: time zero is setup). Tasks registered in the
// same order run in the same order at a shared grid time.
func (set *ShardSet) AddTask(period Time, fn func(at Time)) {
	if period <= 0 || period%set.lookahead != 0 {
		panic(fmt.Sprintf("sim: barrier task period %v must be a positive multiple of the lookahead %v", period, set.lookahead))
	}
	set.tasks = append(set.tasks, &BarrierTask{Every: period, Fn: fn, next: period})
}

// Send posts a cross-LP message from lp, for delivery to dst's LP at
// absolute time at. It must be called from within lp's execution (its
// shard's worker during an epoch, or single-threaded setup/barrier
// phases). The conservative contract requires at to land at or beyond
// the sender's current epoch end; violations panic, because they mean
// the lookahead used to build the ShardSet was wrong. Messages to the
// control LP are exempt: the coordinator drains them at the next
// barrier, which by construction is not before at.
func (lp *LP) Send(dst *LP, at Time, h MsgHandler, a, b any) {
	sh := lp.shard
	if sh.set.running && at < sh.openEnd && dst.shard != sh.set.ctl {
		panic(fmt.Sprintf("sim: lookahead violation: LP %d sent a message for t=%v inside its own epoch ending %v", lp.idx, at, sh.openEnd))
	}
	lp.sendSeq++
	lane := &sh.out[dst.shard.id]
	*lane = append(*lane, Msg{At: at, Src: lp.idx, Seq: lp.sendSeq, Dst: dst, H: h, A: a, B: b})
}

// SendFunc is Send with a closure payload, for control-plane messages.
func (lp *LP) SendFunc(dst *LP, at Time, fn func(at Time)) {
	lp.Send(dst, at, funcMsg{fn}, nil, nil)
}

// Stop requests the run loop to halt at the next barrier.
func (set *ShardSet) Stop() { set.stopped.Store(true) }

// Now reports the current barrier position.
func (set *ShardSet) Now() Time { return set.now }

// Processed sums executed events across shards (including the control
// shard). Safe at barriers and after Run.
func (set *ShardSet) Processed() uint64 {
	var n uint64
	for _, sh := range set.all {
		n += sh.sched.Processed()
	}
	return n
}

// Pending sums queued (not cancelled) events across shards, plus
// in-flight mailbox messages (staged at a barrier or still in an
// outbound lane). Safe at barriers and after Run; the value is
// partition-independent because at a barrier the set of pending
// logical events — queued or in flight — is exactly the set of future
// events of all LPs, regardless of how they are grouped.
func (set *ShardSet) Pending() int {
	n := 0
	for _, sh := range set.all {
		n += sh.sched.Pending()
		for _, lane := range sh.staged {
			n += len(lane)
		}
		for _, lane := range sh.out {
			n += len(lane)
		}
	}
	return n
}

// insertStaged sorts the messages staged at the last barrier by the
// deterministic merge key and schedules them on the shard's local
// queue. Scheduler seq numbers are assigned in sorted order, so the
// (time, seq) total order within the scheduler extends the merge
// order.
func (sh *Shard) insertStaged() {
	if len(sh.staged) == 0 {
		return
	}
	sh.inbox = sh.inbox[:0]
	for _, lane := range sh.staged {
		sh.inbox = append(sh.inbox, lane...)
	}
	sh.staged = sh.staged[:0]
	sort.Slice(sh.inbox, func(i, j int) bool { return msgBefore(sh.inbox[i], sh.inbox[j]) })
	for i := range sh.inbox {
		m := &sh.inbox[i]
		if m.At < sh.sched.now {
			panic(fmt.Sprintf("sim: message for t=%v inserted into shard %d past t=%v", m.At, sh.id, sh.sched.now))
		}
		sh.sched.scheduleMsg(m.At, m.Dst, m.H, m.A, m.B)
	}
	for i := range sh.inbox {
		sh.inbox[i] = Msg{} // drop payload references
	}
}

// worker is the shard's goroutine: it alternates with the coordinator
// over the cmd/done channel pair, which doubles as the memory barrier
// making the coordinator's staging writes visible.
func (sh *Shard) worker() {
	for c := range sh.cmd {
		sh.insertStaged()
		err := sh.sched.run(c.until)
		sh.done <- err
	}
}

// drainLanes routes every shard's outbound lanes to the destination
// shards' staging lists and returns the earliest timestamp staged
// toward a *worker* shard — over ALL staged content, not just the
// messages drained by this call. Staged messages can survive a loop
// iteration (a control run or barrier task fires instead of a worker
// epoch), and the epoch decision must keep seeing them until a worker
// epoch consumes them, or the coordinator would advance shard clocks
// past an undelivered message. Control-destined messages are inserted
// into the control scheduler immediately after the drain, so their
// times surface through its NextEventTime instead.
// Coordinator-only, barrier-only. Ownership of each lane slice moves
// to the destination's staging list.
func (set *ShardSet) drainLanes() (Time, bool) {
	for _, src := range set.all {
		for dst := range src.out {
			lane := src.out[dst]
			if len(lane) == 0 {
				continue
			}
			set.all[dst].staged = append(set.all[dst].staged, lane)
			src.out[dst] = nil
		}
	}
	var minAt Time
	ok := false
	for _, sh := range set.shards {
		for _, lane := range sh.staged {
			for _, m := range lane {
				if !ok || m.At < minAt {
					minAt, ok = m.At, true
				}
			}
		}
	}
	return minAt, ok
}

// nextEventTime scans every shard's queue for the earliest live
// event. Coordinator-only, barrier-only.
func (set *ShardSet) nextEventTime() (Time, bool) {
	var min Time
	ok := false
	for _, sh := range set.shards {
		if at, live := sh.sched.NextEventTime(); live && (!ok || at < min) {
			min, ok = at, true
		}
	}
	return min, ok
}

// advanceTo moves the barrier position and every shard clock forward
// to t (never backward).
func (set *ShardSet) advanceTo(t Time) {
	if t < set.now {
		return
	}
	set.now = t
	for _, sh := range set.shards {
		if sh.sched.now < t {
			sh.sched.now = t
		}
	}
}

// Run drives the epoch loop until every queue and lane is empty or
// the horizon is reached, then leaves all clocks at until. Control
// events and barrier tasks fire at their grid times up to and
// including until. Returns ErrStopped if Stop was called.
//
// Each iteration quiesces at a barrier and picks the earliest of
// three grid-aligned candidates: running due control events, firing
// due barrier tasks, or dispatching the next worker epoch. All three
// decisions derive from global minima (earliest worker event, staged
// message, control event, task time), so the barrier sequence — and
// with it every insertion batch and control execution point — is a
// pure function of the logical event set, independent of the shard
// count.
func (set *ShardSet) Run(until Time) error {
	if !set.started {
		set.started = true
		for _, sh := range set.shards {
			go sh.worker()
		}
		defer func() {
			for _, sh := range set.shards {
				close(sh.cmd)
			}
		}()
	}
	set.running = true
	defer func() { set.running = false }()
	L := set.lookahead
	for {
		if set.stopped.Load() {
			return ErrStopped
		}
		stagedAt, stagedOK := set.drainLanes()
		set.ctl.insertStaged()
		evAt, evOK := set.nextEventTime()
		if stagedOK && (!evOK || stagedAt < evAt) {
			evAt, evOK = stagedAt, true
		}
		if evOK && evAt > until {
			evOK = false
		}
		ctlAt, ctlOK := set.ctl.sched.NextEventTime()
		if ctlOK && ctlAt > until {
			ctlOK = false
		}
		taskAt, taskOK := set.nextTaskTime(until)
		if !evOK && !ctlOK && !taskOK {
			break
		}
		// Next worker epoch start: the grid slot of the earliest event.
		epochStart := set.now
		if evOK {
			epochStart = evAt / L * L
			if epochStart < set.now {
				epochStart = set.now
			}
		}
		// Control barrier: the first grid point at or after the
		// earliest control event, clamped into [now, until].
		ctlBar := set.now
		if ctlOK {
			ctlBar = (ctlAt + L - 1) / L * L
			if ctlBar < set.now {
				ctlBar = set.now
			}
			if ctlBar > until {
				ctlBar = until
			}
		}
		// Priority at a shared barrier position: control events first
		// (their timestamps are the oldest), then tasks, then the
		// epoch. Each branch re-enters the loop so later decisions see
		// the world the earlier ones produced.
		if ctlOK && (!evOK || ctlBar <= epochStart) && (!taskOK || ctlBar <= taskAt) {
			set.advanceTo(ctlBar)
			if err := set.ctl.sched.run(ctlBar); err != nil {
				return err
			}
			continue
		}
		if taskOK && (!evOK || taskAt <= epochStart) {
			set.advanceTo(taskAt)
			set.runTasksAt(taskAt)
			continue
		}
		set.advanceTo(epochStart)
		end := epochStart + L
		runUntil := end - 1
		if runUntil > until {
			runUntil = until
		}
		for _, sh := range set.shards {
			sh.openEnd = end
		}
		for _, sh := range set.shards {
			sh.cmd <- shardCmd{until: runUntil}
		}
		var err error
		for _, sh := range set.shards {
			if e := <-sh.done; e != nil {
				err = e
			}
		}
		if err != nil {
			return err
		}
		set.advanceTo(end)
	}
	set.advanceTo(until)
	if set.ctl.sched.now < until {
		set.ctl.sched.now = until
	}
	return nil
}

// nextTaskTime reports the earliest pending task time <= until.
func (set *ShardSet) nextTaskTime(until Time) (Time, bool) {
	var min Time
	ok := false
	for _, t := range set.tasks {
		if t.next <= until && (!ok || t.next < min) {
			min, ok = t.next, true
		}
	}
	return min, ok
}

// runTasksAt fires every task due at t, in registration order.
func (set *ShardSet) runTasksAt(t Time) {
	for _, task := range set.tasks {
		if task.next == t {
			task.Fn(t)
			task.next += task.Every
		}
	}
}
