package sim

import (
	"fmt"
	"sort"
	"strings"
	"testing"
)

// The sharded kernel's contract is that shard count is unobservable:
// the same seed must produce byte-identical behaviour at 1, 2, 4, and
// 8 shards, on either queue backend. These tests drive a synthetic
// multi-LP workload — token rings crossing LP boundaries, local
// timers drawing per-LP randomness, and barrier tasks sampling global
// state — and compare merged logs across the full matrix.

// testEntry is one synthetic observation, stamped with the
// partition-independent merge key (at, lp, emit-seq).
type testEntry struct {
	at  Time
	lp  uint32
	seq uint64
	msg string
}

type testWorld struct {
	set     *ShardSet
	lps     []*LP
	logs    [][]testEntry // per-LP logs, mutated only by the owning LP
	counts  []int         // per-LP token counters
	taskLog []string
}

func (w *testWorld) emit(lp *LP, at Time, msg string) {
	w.logs[lp.idx] = append(w.logs[lp.idx], testEntry{at: at, lp: lp.idx, seq: lp.NextEmit(), msg: msg})
}

// token is the hot-path message handler: LP state update plus a
// forwarded token with an RNG-jittered delay.
type token struct {
	w    *testWorld
	ring []*LP
}

func (tk *token) HandleMsg(at Time, a, b any) {
	self := a.(*LP)
	w := tk.w
	w.counts[self.idx]++
	w.emit(self, at, fmt.Sprintf("token n=%d r=%d", w.counts[self.idx], self.RNG().Int63n(1000)))
	if w.counts[self.idx] == 2 {
		// Report to the control plane carrying the *current* timestamp:
		// ctl-destined sends are exempt from the lookahead floor.
		ctl := w.set.CtlLP()
		src, n := self.idx, w.counts[self.idx]
		self.SendFunc(ctl, at, func(t Time) {
			w.emit(ctl, t, fmt.Sprintf("report lp=%d n=%d", src, n))
		})
	}
	if w.counts[self.idx] >= 40 {
		return
	}
	next := tk.ring[(int(self.idx)+1)%len(tk.ring)]
	jitter := Time(self.RNG().Int63n(int64(3 * Millisecond)))
	self.Send(next, at+w.set.Lookahead()+jitter, tk, next, nil)
}

func runShardWorld(t *testing.T, seed int64, shards int, kind QueueKind) (string, uint64) {
	t.Helper()
	const L = 2 * Millisecond
	const nLP = 7
	set := NewShardSet(seed, shards, L, kind)
	w := &testWorld{set: set}
	for i := 0; i < nLP; i++ {
		w.lps = append(w.lps, set.NewLP(i%shards))
	}
	// LP index 0 is the control LP, so per-LP arrays carry one extra
	// slot and topology LPs occupy 1..nLP.
	w.logs = make([][]testEntry, nLP+1)
	w.counts = make([]int, nLP+1)
	tk := &token{w: w, ring: w.lps}

	// A control-plane chain: an off-grid self-rescheduling timer on the
	// ctl scheduler, drawing from the ctl LP's stream and sampling
	// global state at barriers.
	ctlLP := set.CtlLP()
	set.WithLP(ctlLP, func() {
		var cron func()
		m := 0
		cron = func() {
			m++
			at := set.CtlSched().Now()
			w.emit(ctlLP, at, fmt.Sprintf("ctl n=%d r=%d pend=%d", m, set.CtlSched().RNG().Int63n(1000), set.Pending()))
			if m < 40 {
				set.CtlSched().Schedule(3100*Microsecond, cron)
			}
		}
		set.CtlSched().Schedule(1500*Microsecond, cron)
	})

	for _, lp := range w.lps {
		lp := lp
		set.WithLP(lp, func() {
			// A local timer chain: self-rescheduling, RNG-driven, never
			// crossing the LP boundary.
			var tick func()
			n := 0
			tick = func() {
				n++
				at := lp.shard.sched.Now()
				w.emit(lp, at, fmt.Sprintf("tick n=%d r=%d", n, lp.shard.sched.RNG().Int63n(1000)))
				if n < 25 {
					lp.shard.sched.Schedule(1700*Microsecond, tick)
				}
			}
			lp.shard.sched.Schedule(Time(lp.idx+1)*300*Microsecond, tick)
			// Seed the ring: every third LP starts a token at setup.
			if lp.idx%3 == 0 {
				next := w.lps[(int(lp.idx)+1)%nLP]
				lp.Send(next, 5*Millisecond+Time(lp.idx)*Millisecond, tk, next, nil)
			}
		})
	}
	set.AddTask(10*Millisecond, func(at Time) {
		total := 0
		for _, c := range w.counts {
			total += c
		}
		w.taskLog = append(w.taskLog, fmt.Sprintf("t=%v total=%d pending=%d", at, total, set.Pending()))
	})

	if err := set.Run(200 * Millisecond); err != nil {
		t.Fatalf("Run: %v", err)
	}

	// Merge the per-LP logs by the deterministic key, exactly as the
	// observability layer merges per-shard trace buffers.
	var all []testEntry
	for _, log := range w.logs {
		all = append(all, log...)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.at != b.at {
			return a.at < b.at
		}
		if a.lp != b.lp {
			return a.lp < b.lp
		}
		return a.seq < b.seq
	})
	var sb strings.Builder
	for _, e := range all {
		fmt.Fprintf(&sb, "%d lp%d #%d %s\n", int64(e.at), e.lp, e.seq, e.msg)
	}
	sb.WriteString("-- tasks --\n")
	for _, l := range w.taskLog {
		sb.WriteString(l)
		sb.WriteByte('\n')
	}
	return sb.String(), set.Processed()
}

func TestShardCountUnobservable(t *testing.T) {
	refLog, refProcessed := runShardWorld(t, 42, 1, QueueHeap)
	if !strings.Contains(refLog, "token") || !strings.Contains(refLog, "tick") ||
		!strings.Contains(refLog, "ctl ") || !strings.Contains(refLog, "report ") {
		t.Fatalf("reference log is missing workload entries:\n%s", refLog)
	}
	for _, shards := range []int{1, 2, 4, 8} {
		for _, kind := range []QueueKind{QueueHeap, QueueCalendar} {
			log, processed := runShardWorld(t, 42, shards, kind)
			if log != refLog {
				t.Fatalf("shards=%d queue=%s diverged from shards=1 heap:\nref:\n%s\ngot:\n%s", shards, kind, refLog, log)
			}
			if processed != refProcessed {
				t.Fatalf("shards=%d queue=%s processed %d events, want %d", shards, kind, processed, refProcessed)
			}
		}
	}
}

func TestShardDifferentSeedsDiverge(t *testing.T) {
	a, _ := runShardWorld(t, 1, 4, QueueHeap)
	b, _ := runShardWorld(t, 2, 4, QueueHeap)
	if a == b {
		t.Fatal("different seeds produced identical logs")
	}
}

// TestShardRace exists to give the race detector a parallel workload;
// correctness is covered above.
func TestShardRace(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		runShardWorld(t, seed, 4, QueueHeap)
	}
}

func TestShardLookaheadViolationPanics(t *testing.T) {
	set := NewShardSet(1, 2, 2*Millisecond, QueueHeap)
	a, b := set.NewLP(0), set.NewLP(1)
	set.WithLP(a, func() {
		a.shard.sched.Schedule(Millisecond, func() {
			defer func() {
				if recover() == nil {
					t.Error("in-epoch delivery time did not panic")
				}
				set.Stop()
			}()
			a.Send(b, a.shard.sched.Now(), funcMsg{func(Time) {}}, nil, nil)
		})
	})
	_ = set.Run(10 * Millisecond)
}

func TestBarrierTaskGridValidation(t *testing.T) {
	set := NewShardSet(1, 1, 2*Millisecond, QueueHeap)
	defer func() {
		if recover() == nil {
			t.Error("off-grid task period did not panic")
		}
	}()
	set.AddTask(3*Millisecond, func(Time) {})
}
