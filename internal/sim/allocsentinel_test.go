//go:build simdebug

package sim_test

import (
	"testing"

	hotalloc "ddosim/internal/lint/testdata/allocfree/hotalloc"
	"ddosim/internal/sim"
)

// These tests are the runtime half of the one-bug-two-catchers
// contract: internal/lint's TestAllocFreeHotAlloc pins the hotalloc
// fixture's per-event closure to its exact file:line statically, and
// the armed sentinel catches the same pattern — and clears the
// pre-bound fix — by counting what the runtime actually allocated.

func TestAllocSentinelCatchesHotPump(t *testing.T) {
	if !sim.SentinelEnabled() {
		t.Fatal("simdebug build without an armed sentinel")
	}
	const events = 1000
	s := sim.NewScheduler(1)
	budget := events
	hotalloc.Pump(s, &budget)
	allocs := sim.AllocSentinel(func() {
		if err := s.RunAll(); err != nil {
			t.Fatal(err)
		}
	})
	if budget != 0 {
		t.Fatalf("pump did not drain: budget %d", budget)
	}
	// Every event allocates at least its capturing closure; the bound
	// is slack (events/2) only to stay independent of scheduler slab
	// warm-up accounting.
	if allocs < events/2 {
		t.Fatalf("allocating pump showed only %d allocations over %d events; sentinel is blind", allocs, events)
	}
}

func TestAllocSentinelClearsBoundPump(t *testing.T) {
	const events = 512
	s := sim.NewScheduler(1)
	// Warm pass: grows the scheduler's slot slab and queue to steady
	// state so the measured pass exercises only the hot loop.
	warm := hotalloc.NewBoundPump(s, events)
	warm.Start()
	if err := s.RunAll(); err != nil {
		t.Fatal(err)
	}

	p := hotalloc.NewBoundPump(s, events)
	p.Start()
	allocs := sim.AllocSentinel(func() {
		if err := s.RunAll(); err != nil {
			t.Fatal(err)
		}
	})
	if !p.Done() {
		t.Fatal("pump did not drain")
	}
	if allocs != 0 {
		t.Fatalf("pre-bound pump allocated %d times at steady state; want 0", allocs)
	}
}
