package netsim

import (
	"fmt"
	"net/netip"

	"ddosim/internal/obs"
	"ddosim/internal/sim"
)

// Flow accounting: a NetFlow-v5-style exporter on the packet hot path.
//
// Every locally-originated packet (Node.SendPacket) is accounted to a
// unidirectional flow keyed by (src, dst, proto). Flows expire on an
// active timeout (long-lived flows are checkpointed so downstream
// consumers see progress), an idle timeout (silence closes the flow),
// eviction (table full), or the end-of-run flush. Expired records are
// batched into an obs.FlowSink.
//
// Accounting happens at origination, before queueing — records
// describe offered load, not delivered load, so a flow whose packets
// die at a faulted link still closes with the full byte/packet count
// the sender offered. Delivered load is the sink taps' job.
//
// The table is allocation-free in steady state: entries live in a
// flat slice recycled through a free list, the batch slice is reused
// across flushes, and the only hot-path map operation is a lookup on
// a comparable key. Expiry is driven by the event kernel (a sweep
// ticker), so export timing — and therefore every exported byte — is
// a pure function of the run.

// The table shares FlowKey (trace.go) with FlowMonitor: both identify
// a unidirectional flow by (proto, src, dst). FlowKey is comparable,
// so the hot-path map lookup is alloc-free.

// FlowLabelRule assigns a ground-truth label to new flows. A rule
// matches when every set field does: Endpoint (if valid) must equal
// the flow's source or destination exactly (address and port
// together — how C&C traffic on a well-known port is told apart from
// other uses of that port); Addr (if valid) must equal the source or
// destination address; Port (if nonzero) must equal the source or
// destination port. Matching is direction-agnostic so one rule labels
// both halves of a conversation. The first matching rule wins;
// unmatched flows are labeled "benign".
type FlowLabelRule struct {
	Endpoint netip.AddrPort
	Addr     netip.Addr
	Port     uint16
	Label    string
}

// Flow-table tuning defaults.
const (
	DefaultFlowActiveTimeout = 60 * sim.Second
	DefaultFlowIdleTimeout   = 15 * sim.Second
	DefaultFlowSweepPeriod   = 1 * sim.Second
	DefaultMaxFlows          = 1 << 16
	DefaultFlowExportBatch   = 64
)

// FlowConfig tunes the flow table. Zero fields take the defaults
// above; Sink may be nil (records are then dropped at flush, which
// still keeps the table bounded).
type FlowConfig struct {
	ActiveTimeout sim.Time
	IdleTimeout   sim.Time
	SweepPeriod   sim.Time
	MaxFlows      int
	ExportBatch   int
	Sink          obs.FlowSink
}

func (c *FlowConfig) normalize() {
	if c.ActiveTimeout <= 0 {
		c.ActiveTimeout = DefaultFlowActiveTimeout
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = DefaultFlowIdleTimeout
	}
	if c.SweepPeriod <= 0 {
		c.SweepPeriod = DefaultFlowSweepPeriod
	}
	if c.MaxFlows <= 0 {
		c.MaxFlows = DefaultMaxFlows
	}
	if c.ExportBatch <= 0 {
		c.ExportBatch = DefaultFlowExportBatch
	}
}

// flowEntry is one live (or free) slot in the flat entry table.
type flowEntry struct {
	key     FlowKey
	start   sim.Time
	last    sim.Time
	packets uint64
	bytes   uint64
	flags   TCPFlags
	label   string
	live    bool
}

// FlowTableStats counts flow-table activity.
type FlowTableStats struct {
	Created  uint64 // flows opened (including post-checkpoint restarts)
	Exported uint64 // records handed to the sink
	Evicted  uint64 // flows force-closed by the MaxFlows cap
}

// FlowTable is the per-network flow accountant. It is not safe for
// concurrent use; like the rest of the simulator it runs on the
// event-kernel thread.
type FlowTable struct {
	sched *sim.Scheduler
	cfg   FlowConfig

	idx      map[FlowKey]int32
	entries  []flowEntry
	freeList []int32

	// order lists entry indexes in creation order; orderHead marks the
	// oldest not-yet-compacted position. Dead indexes are skipped
	// lazily and compacted away by the sweep. Entry slots are returned
	// to freeList ONLY during compaction (sweep/FlushAll), never at
	// deletion time — otherwise a recycled slot could alias a stale
	// order reference onto the new tenant.
	order     []int32
	orderHead int

	rules []FlowLabelRule
	batch []obs.FlowRecord

	sweeper *sim.Ticker
	stats   FlowTableStats
}

// newFlowTable builds a table without a sweeper.
func newFlowTable(sched *sim.Scheduler, cfg FlowConfig) *FlowTable {
	return &FlowTable{
		sched: sched,
		cfg:   cfg,
		idx:   make(map[FlowKey]int32, cfg.MaxFlows/4),
		batch: make([]obs.FlowRecord, 0, cfg.ExportBatch),
	}
}

// EnableFlows attaches flow accounting to the network. Legacy mode
// runs one table with its expiry sweeper on the network's scheduler
// and returns it. Sharded mode builds one table per shard — each fed
// only by its own shard's originating nodes, each exporting into a
// private per-shard buffer (cfg.Sink is ignored; read the merged
// dataset via FlowDataset) — swept by a single control-plane ticker at
// barriers so expiry timing is a global, partition-independent
// schedule; it returns nil (per-table access is meaningless there —
// use the Network-level flow methods). Calling EnableFlows again
// replaces the previous accounting (stopped and flushed).
func (w *Network) EnableFlows(cfg FlowConfig) *FlowTable {
	if w.flows != nil {
		w.flows.Stop()
		w.flows.FlushAll(w.sched.Now())
	}
	cfg.normalize()
	if w.set != nil {
		w.StopFlows()
		w.FlushFlows(w.set.Now())
		if cfg.SweepPeriod%w.set.Lookahead() != 0 {
			panic(fmt.Sprintf("netsim: flow sweep period %v must be a multiple of the shard lookahead %v", cfg.SweepPeriod, w.set.Lookahead()))
		}
		cfg.Sink = nil
		for i, c := range w.ctxs {
			c.flowBuf = &obs.FlowBuffer{}
			shardCfg := cfg
			shardCfg.Sink = c.flowBuf
			c.flows = newFlowTable(w.set.Shard(i).Sched(), shardCfg)
		}
		w.flowSweeper = sim.NewTicker(w.set.CtlSched(), cfg.SweepPeriod, func() {
			now := w.set.CtlSched().Now()
			for _, c := range w.ctxs {
				c.flows.sweepAt(now)
			}
		})
		w.flowSweeper.Source = "net.flows"
		w.flowSweeper.Start()
		return nil
	}
	ft := newFlowTable(w.sched, cfg)
	ft.sweeper = sim.NewTicker(w.sched, cfg.SweepPeriod, ft.sweep)
	ft.sweeper.Source = "net.flows"
	ft.sweeper.Start()
	w.flows = ft
	return ft
}

// Flows returns the network's flow table, or nil when flow accounting
// is disabled or sharded (per-shard tables are internal; use the
// Network-level flow methods).
func (w *Network) Flows() *FlowTable { return w.flows }

// flowTable returns the table accounting this node's originated
// packets, or nil.
func (n *Node) flowTable() *FlowTable {
	if n.ctx != nil {
		return n.ctx.flows
	}
	return n.net.flows
}

// AddFlowLabelRule appends a ground-truth labeling rule to every
// active flow table (the single legacy table, or all per-shard
// tables). No-op when flow accounting is disabled.
func (w *Network) AddFlowLabelRule(r FlowLabelRule) {
	if w.flows != nil {
		w.flows.AddLabelRule(r)
	}
	for _, c := range w.ctxs {
		if c.flows != nil {
			c.flows.AddLabelRule(r)
		}
	}
}

// StopFlows halts flow expiry (the legacy sweeper or the sharded
// control-plane sweeper). Pending flows stay until FlushFlows.
func (w *Network) StopFlows() {
	if w.flows != nil {
		w.flows.Stop()
	}
	if w.flowSweeper != nil {
		w.flowSweeper.Stop()
		w.flowSweeper = nil
	}
}

// FlushFlows closes every live flow in every active table with reason
// "final". Sharded mode calls this after the run (or at a barrier).
func (w *Network) FlushFlows(now sim.Time) {
	if w.flows != nil {
		w.flows.FlushAll(now)
	}
	for _, c := range w.ctxs {
		if c.flows != nil {
			c.flows.FlushAll(now)
		}
	}
}

// FlowDataset merges the per-shard flow buffers into one
// deterministically-ordered dataset (sharded mode; see
// obs.MergeFlowBuffers). Nil when flow accounting is disabled or the
// network is not sharded — the legacy table exports into the caller's
// own cfg.Sink instead.
func (w *Network) FlowDataset() *obs.FlowBuffer {
	if w.set == nil || len(w.ctxs) == 0 || w.ctxs[0].flowBuf == nil {
		return nil
	}
	parts := make([]*obs.FlowBuffer, len(w.ctxs))
	for i, c := range w.ctxs {
		parts[i] = c.flowBuf
	}
	return obs.MergeFlowBuffers(parts...)
}

// FlowTableStatsTotal sums the activity counters over every active
// table. Each counter is a sum of per-flow facts, so the total is
// partition-independent.
func (w *Network) FlowTableStatsTotal() FlowTableStats {
	var st FlowTableStats
	if w.flows != nil {
		st = w.flows.Stats()
	}
	for _, c := range w.ctxs {
		if c.flows != nil {
			s := c.flows.Stats()
			st.Created += s.Created
			st.Exported += s.Exported
			st.Evicted += s.Evicted
		}
	}
	return st
}

// AddLabelRule appends a ground-truth labeling rule. Rules apply to
// flows created after the call; earlier flows keep their label.
func (ft *FlowTable) AddLabelRule(r FlowLabelRule) {
	ft.rules = append(ft.rules, r)
}

// Active reports the number of live flows.
func (ft *FlowTable) Active() int { return len(ft.idx) }

// Stats returns a copy of the table's activity counters.
func (ft *FlowTable) Stats() FlowTableStats { return ft.stats }

// Stop halts the expiry sweeper. Pending flows stay in the table until
// FlushAll.
func (ft *FlowTable) Stop() {
	if ft.sweeper != nil {
		ft.sweeper.Stop()
	}
}

func (ft *FlowTable) labelFor(k FlowKey) string {
	for i := range ft.rules {
		r := &ft.rules[i]
		if r.Endpoint.IsValid() && r.Endpoint != k.Src && r.Endpoint != k.Dst {
			continue
		}
		if r.Addr.IsValid() && r.Addr != k.Src.Addr() && r.Addr != k.Dst.Addr() {
			continue
		}
		if r.Port != 0 && r.Port != k.Dst.Port() && r.Port != k.Src.Port() {
			continue
		}
		return r.Label
	}
	return "benign"
}

// record accounts one originated packet. This is the hot path: for an
// established flow it is a map lookup plus a handful of field updates,
// with no allocation; only a never-seen flow key pays the slab/index
// inserts below, bounded by MaxFlows.
//
//simlint:hotpath
func (ft *FlowTable) record(pkt *Packet, now sim.Time) {
	k := FlowKey{Src: pkt.Src, Dst: pkt.Dst, Proto: pkt.Proto}
	if i, ok := ft.idx[k]; ok {
		e := &ft.entries[i]
		if now-e.start >= ft.cfg.ActiveTimeout {
			// Checkpoint: export the elapsed interval and restart the
			// record in place.
			ft.export(e, e.last, obs.FlowActive)
			e.start, e.last = now, now
			e.packets, e.bytes, e.flags = 0, 0, 0
			ft.stats.Created++
		}
		e.packets++
		e.bytes += uint64(pkt.Size())
		e.last = now
		if pkt.TCP != nil {
			e.flags |= pkt.TCP.Flags
		}
		return
	}

	if len(ft.idx) >= ft.cfg.MaxFlows {
		ft.evictOldest()
	}
	var i int32
	if n := len(ft.freeList); n > 0 {
		i = ft.freeList[n-1]
		ft.freeList = ft.freeList[:n-1]
	} else {
		ft.entries = append(ft.entries, flowEntry{}) //simlint:allow allocfree(first sighting of a flow key only; steady state reuses freeList slots and the slab is bounded by MaxFlows)
		i = int32(len(ft.entries) - 1)
	}
	e := &ft.entries[i]
	e.key = k
	e.start, e.last = now, now
	e.packets, e.bytes = 1, uint64(pkt.Size())
	e.flags = 0
	if pkt.TCP != nil {
		e.flags = pkt.TCP.Flags
	}
	e.label = ft.labelFor(k)
	e.live = true
	ft.idx[k] = i //simlint:allow allocfree(index insert and order append run once per new flow key, bounded by MaxFlows; the established-flow path above returns before them)
	ft.order = append(ft.order, i)
	ft.stats.Created++
}

// evictOldest closes the oldest live flow to make room. The slot is
// marked dead but not recycled (see order's comment).
func (ft *FlowTable) evictOldest() {
	for ft.orderHead < len(ft.order) {
		i := ft.order[ft.orderHead]
		ft.orderHead++
		e := &ft.entries[i]
		if !e.live {
			continue
		}
		ft.export(e, e.last, obs.FlowEvict)
		delete(ft.idx, e.key)
		e.live = false
		e.label = ""
		ft.stats.Evicted++
		return
	}
}

// export appends one record for entry e ending at end and flushes the
// batch when full.
func (ft *FlowTable) export(e *flowEntry, end sim.Time, reason string) {
	//simlint:allow allocfree(batch is reused across flushes; it grows to the configured batch size once and then appends into spare capacity)
	ft.batch = append(ft.batch, obs.FlowRecord{
		StartUS:  int64(e.start / sim.Microsecond),
		EndUS:    int64(end / sim.Microsecond),
		Proto:    e.key.Proto.String(),
		Src:      e.key.Src,
		Dst:      e.key.Dst,
		Packets:  e.packets,
		Bytes:    e.bytes,
		TCPFlags: uint8(e.flags),
		Label:    e.label,
		Reason:   reason,
	})
	ft.stats.Exported++
	if len(ft.batch) >= ft.cfg.ExportBatch {
		ft.flush()
	}
}

// flush hands the pending batch to the sink and resets it. The batch
// slice is reused; the sink contract requires it to copy.
func (ft *FlowTable) flush() {
	if len(ft.batch) == 0 {
		return
	}
	if ft.cfg.Sink != nil {
		ft.cfg.Sink.ExportFlows(ft.batch)
	}
	ft.batch = ft.batch[:0]
}

// sweep is the periodic expiry pass at the table's own clock. Runs on
// the event kernel via the table's ticker (legacy mode).
func (ft *FlowTable) sweep() { ft.sweepAt(ft.sched.Now()) }

// sweepAt compacts the creation-order list (reclaiming dead slots) and
// closes idle flows as of now. Sharded mode drives this from the
// control-plane ticker at barriers, one global schedule for all
// per-shard tables.
func (ft *FlowTable) sweepAt(now sim.Time) {
	live := ft.order[:0]
	for _, i := range ft.order[ft.orderHead:] {
		e := &ft.entries[i]
		if !e.live {
			ft.freeList = append(ft.freeList, i)
			continue
		}
		if now-e.last >= ft.cfg.IdleTimeout {
			ft.export(e, e.last, obs.FlowIdle)
			delete(ft.idx, e.key)
			e.live = false
			e.label = ""
			ft.freeList = append(ft.freeList, i)
			continue
		}
		live = append(live, i)
	}
	ft.order = live
	ft.orderHead = 0
	ft.flush()
}

// FlushAll closes every live flow with reason "final" (ended at its
// last activity instant), flushes the sink, and empties the table.
// Called once when a run finishes.
func (ft *FlowTable) FlushAll(now sim.Time) {
	for _, i := range ft.order[ft.orderHead:] {
		e := &ft.entries[i]
		if !e.live {
			continue
		}
		ft.export(e, e.last, obs.FlowFinal)
		e.live = false
		e.label = ""
	}
	clear(ft.idx)
	ft.order = ft.order[:0]
	ft.orderHead = 0
	ft.freeList = ft.freeList[:0]
	ft.entries = ft.entries[:0]
	ft.flush()
}
