package netsim

// Packet pooling. The UDP flood is the simulator's hottest producer:
// one datagram per event for the whole attack window. Recycling the
// Packet structs through a per-network free list makes the steady-state
// flood path allocation-free. See the ownership rules on Packet.

// packetPoolCap bounds the free list so a burst (a deep drop-tail queue
// draining at once) cannot pin an unbounded number of dead structs.
const packetPoolCap = 4096

// PoolStats reports packet free-list effectiveness.
type PoolStats struct {
	// Reused counts allocations served from the free list.
	Reused uint64
	// Allocated counts packets that had to be heap-allocated.
	Allocated uint64
	// Free is the current free-list depth.
	Free int
}

// PoolStats returns the packet free-list counters.
func (w *Network) PoolStats() PoolStats {
	return PoolStats{Reused: w.poolReused, Allocated: w.poolAllocs, Free: len(w.pool)}
}

// AllocPacket returns a zeroed packet, recycled when possible. The
// caller populates it and hands it to Node.SendPacket or NetDevice.Send
// exactly once; ownership transfers with the send (see Packet).
// Plain &Packet{} literals remain valid senders — they simply join the
// pool after their terminal delivery or drop.
func (w *Network) AllocPacket() *Packet { return w.getPacket() }

func (w *Network) getPacket() *Packet {
	if n := len(w.pool); n > 0 {
		p := w.pool[n-1]
		w.pool[n-1] = nil
		w.pool = w.pool[:n-1]
		w.poolReused++
		p.sanUnpoison()
		p.sanAlloc()
		return p
	}
	w.poolAllocs++
	p := &Packet{}
	p.sanAlloc()
	return p
}

// ReleasePacket returns an allocated-but-unsent packet to the free
// list: the undo of AllocPacket for callers that populate a packet and
// then abort before the send would have transferred ownership. Sending
// a released packet is a use-after-release (caught by the pktown
// analyzer statically and the simdebug sanitizer at runtime).
func (w *Network) ReleasePacket(p *Packet) { w.putPacket(p) }

// putPacket retires a packet at its terminal point (delivered locally,
// or dropped). The struct is zeroed — dropping its Payload and TCP
// references — before joining the free list, so recycled packets carry
// nothing over. Payload backing arrays are never pooled.
func (w *Network) putPacket(p *Packet) {
	if p == nil {
		return
	}
	p.sanRelease()
	// The sanitizer state must survive the zeroing: the generation
	// stamp and release site are exactly what the next use-after-release
	// panic needs to report. Zero-cost without the simdebug tag, where
	// sanState is an empty struct.
	san := p.san
	*p = Packet{}
	p.san = san
	p.sanPoison()
	if len(w.pool) < packetPoolCap {
		w.pool = append(w.pool, p)
	}
}

// clonePacket is Packet.Clone on the free list: the struct is recycled,
// the payload copy is fresh (receivers may retain payload slices, so
// backing arrays are never shared with or recycled from the pool).
func (w *Network) clonePacket(p *Packet) *Packet {
	p.sanCheck("clonePacket")
	cp := w.getPacket()
	cp.UID, cp.Proto, cp.Src, cp.Dst, cp.Pad = p.UID, p.Proto, p.Src, p.Dst, p.Pad
	if p.Payload != nil {
		cp.Payload = make([]byte, len(p.Payload))
		copy(cp.Payload, p.Payload)
	}
	if p.TCP != nil {
		cp.hdr = *p.TCP
		cp.TCP = &cp.hdr
	}
	return cp
}

// pktRing is a growable FIFO of packets backed by a circular buffer —
// the storage for a device's egress queue and in-flight window. Push
// and pop are O(1) and steady-state allocation-free; the buffer only
// grows, up to the high-water mark of its queue.
type pktRing struct {
	buf  []*Packet
	head int
	n    int
}

func (r *pktRing) len() int { return r.n }

func (r *pktRing) push(p *Packet) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)%len(r.buf)] = p
	r.n++
}

func (r *pktRing) grow() {
	size := 2 * len(r.buf)
	if size < 8 {
		size = 8
	}
	nb := make([]*Packet, size)
	for i := 0; i < r.n; i++ {
		nb[i] = r.buf[(r.head+i)%len(r.buf)]
	}
	r.buf, r.head = nb, 0
}

func (r *pktRing) peek() *Packet { return r.buf[r.head] }

func (r *pktRing) pop() *Packet {
	p := r.buf[r.head]
	r.buf[r.head] = nil
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return p
}
