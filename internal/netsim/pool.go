package netsim

// Packet pooling. The UDP flood is the simulator's hottest producer:
// one datagram per event for the whole attack window. Recycling the
// Packet structs through a free list makes the steady-state flood path
// allocation-free. See the ownership rules on Packet.
//
// Legacy (single-threaded) mode keeps one free list on the Network.
// Sharded mode keeps one free list per shard context (netShard), owned
// by that shard's worker goroutine: a node always allocates from its
// own shard's pool, and a packet retires into the pool of whichever
// shard it died on. Structs therefore migrate between pools with
// cross-shard traffic — harmless, because recycled packets are zeroed
// and pooling is unobservable by design.

// packetPoolCap bounds the free list so a burst (a deep drop-tail queue
// draining at once) cannot pin an unbounded number of dead structs.
const packetPoolCap = 4096

// pktPool is one packet free list with its effectiveness counters.
type pktPool struct {
	free   []*Packet
	reused uint64
	allocs uint64
}

func (pp *pktPool) get() *Packet {
	if n := len(pp.free); n > 0 {
		p := pp.free[n-1]
		pp.free[n-1] = nil
		pp.free = pp.free[:n-1]
		pp.reused++
		p.sanUnpoison()
		p.sanAlloc()
		return p
	}
	pp.allocs++
	p := &Packet{}
	p.sanAlloc()
	return p
}

func (pp *pktPool) put(p *Packet) {
	if p == nil {
		return
	}
	p.sanRelease()
	// The sanitizer state must survive the zeroing: the generation
	// stamp and release site are exactly what the next use-after-release
	// panic needs to report. Zero-cost without the simdebug tag, where
	// sanState is an empty struct.
	san := p.san
	*p = Packet{}
	p.san = san
	p.sanPoison()
	if len(pp.free) < packetPoolCap {
		pp.free = append(pp.free, p)
	}
}

func (pp *pktPool) clone(p *Packet) *Packet {
	p.sanCheck("clonePacket")
	cp := pp.get()
	cp.UID, cp.Proto, cp.Src, cp.Dst, cp.Pad = p.UID, p.Proto, p.Src, p.Dst, p.Pad
	if p.Payload != nil {
		cp.Payload = make([]byte, len(p.Payload)) //simlint:allow allocfree(clone's contract is a deep payload copy; the flood path sends padded packets with nil Payload and never pays this)
		copy(cp.Payload, p.Payload)
	}
	if p.TCP != nil {
		cp.hdr = *p.TCP
		cp.TCP = &cp.hdr
	}
	return cp
}

// PoolStats reports packet free-list effectiveness.
type PoolStats struct {
	// Reused counts allocations served from the free list.
	Reused uint64
	// Allocated counts packets that had to be heap-allocated.
	Allocated uint64
	// Free is the current free-list depth.
	Free int
}

// PoolStats returns the packet free-list counters, summed over the
// per-shard pools in sharded mode. Note the reused/allocated split is
// partition-dependent there (structs migrate between pools), so
// sharded-mode reports must not serialize it.
func (w *Network) PoolStats() PoolStats {
	st := PoolStats{Reused: w.pp.reused, Allocated: w.pp.allocs, Free: len(w.pp.free)}
	for _, c := range w.ctxs {
		st.Reused += c.pp.reused
		st.Allocated += c.pp.allocs
		st.Free += len(c.pp.free)
	}
	return st
}

// pool returns the free list this node allocates from and retires to:
// its shard context's in sharded mode, the network-wide one otherwise.
func (n *Node) pool() *pktPool {
	if n.ctx != nil {
		return &n.ctx.pp
	}
	return &n.net.pp
}

// AllocPacket returns a zeroed packet, recycled when possible. The
// caller populates it and hands it to Node.SendPacket or NetDevice.Send
// exactly once; ownership transfers with the send (see Packet).
// Plain &Packet{} literals remain valid senders — they simply join the
// pool after their terminal delivery or drop.
func (n *Node) AllocPacket() *Packet { return n.getPacket() }

// ReleasePacket returns an allocated-but-unsent packet to the free
// list: the undo of AllocPacket for callers that populate a packet and
// then abort before the send would have transferred ownership. Sending
// a released packet is a use-after-release (caught by the pktown
// analyzer statically and the simdebug sanitizer at runtime).
func (n *Node) ReleasePacket(p *Packet) { n.putPacket(p) }

func (n *Node) getPacket() *Packet        { return n.pool().get() }
func (n *Node) putPacket(p *Packet)       { n.pool().put(p) }
func (n *Node) clonePacket(p *Packet) *Packet { return n.pool().clone(p) }

// AllocPacket is the network-wide allocator, valid only in legacy mode
// — sharded allocations must come from a node so they draw on the
// owning shard's pool (Node.AllocPacket).
func (w *Network) AllocPacket() *Packet {
	if w.set != nil {
		panic("netsim: Network.AllocPacket in sharded mode; allocate from a Node")
	}
	return w.getPacket()
}

// ReleasePacket is the network-wide undo of AllocPacket (legacy mode
// only; see Node.ReleasePacket).
func (w *Network) ReleasePacket(p *Packet) {
	if w.set != nil {
		panic("netsim: Network.ReleasePacket in sharded mode; release through a Node")
	}
	w.putPacket(p)
}

func (w *Network) getPacket() *Packet        { return w.pp.get() }
func (w *Network) putPacket(p *Packet)       { w.pp.put(p) }
func (w *Network) clonePacket(p *Packet) *Packet { return w.pp.clone(p) }

// pktRing is a growable FIFO of packets backed by a circular buffer —
// the storage for a device's egress queue and in-flight window. Push
// and pop are O(1) and steady-state allocation-free; the buffer only
// grows, up to the high-water mark of its queue.
type pktRing struct {
	buf  []*Packet
	head int
	n    int
}

func (r *pktRing) len() int { return r.n }

func (r *pktRing) push(p *Packet) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)%len(r.buf)] = p
	r.n++
}

func (r *pktRing) grow() {
	size := 2 * len(r.buf)
	if size < 8 {
		size = 8
	}
	nb := make([]*Packet, size) //simlint:allow allocfree(ring doubling is amortized O(1) per enqueue and the ring never shrinks, so a warmed queue stops growing)
	for i := 0; i < r.n; i++ {
		nb[i] = r.buf[(r.head+i)%len(r.buf)]
	}
	r.buf, r.head = nb, 0
}

func (r *pktRing) peek() *Packet { return r.buf[r.head] }

func (r *pktRing) pop() *Packet {
	p := r.buf[r.head]
	r.buf[r.head] = nil
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return p
}
