package netsim

import (
	"fmt"

	"ddosim/internal/sim"
)

// DeviceStats aggregates per-device counters. The resource model and
// the defense feature extractor both read these.
type DeviceStats struct {
	TxPackets   uint64
	TxBytes     uint64
	RxPackets   uint64
	RxBytes     uint64
	QueueDrops  uint64
	DownDrops   uint64
	LossDrops   uint64
	PeakQueue   int
	CurrentLoad int
}

// NetDevice is one endpoint of a full-duplex point-to-point link. It
// owns a drop-tail egress queue and models serialization delay at its
// configured rate plus the link's propagation delay — the same
// first-order behaviour as an NS-3 PointToPointNetDevice.
//
// A NetDevice doubles as the "TapBridge ghost node" of the paper: a
// container's eth0 is bound to one of these, giving its processes the
// illusion of a direct attachment to the simulated network.
type NetDevice struct {
	node  *Node
	peer  *NetDevice
	sched *sim.Scheduler

	rate  DataRate
	delay sim.Time

	// queue is the drop-tail egress buffer; inflight holds frames that
	// finished serializing and are propagating toward the peer. Both are
	// rings so the steady-state tx path never allocates. The tx and
	// prop callbacks are bound once at Connect for the same reason — a
	// closure per frame was one of the two allocations on the flood
	// path.
	queue        pktRing
	inflight     pktRing
	queueLimit   int
	transmitting bool
	txEvent      sim.EventID
	txFn         func()
	propFn       func()
	up           bool
	lossRate     float64

	stats DeviceStats
}

// DefaultQueueLimit is the drop-tail queue depth in packets when a link
// is created without an explicit limit. NS-3's default DropTailQueue is
// 100 packets; the paper keeps the default.
const DefaultQueueLimit = 100

// Connect joins two nodes with a full-duplex link. Each direction
// serializes at the respective sender's rate and is delayed by delay.
// It returns the two endpoint devices, attached to a and b in order.
func Connect(a, b *Node, rate DataRate, delay sim.Time, queueLimit int) (*NetDevice, *NetDevice) {
	if queueLimit <= 0 {
		queueLimit = DefaultQueueLimit
	}
	if set := a.net.set; set != nil && delay < set.Lookahead() {
		// The conservative kernel's safety argument needs every
		// cross-LP latency to be at least the epoch width.
		panic(fmt.Sprintf("netsim: Connect(%s, %s): link delay %v below the shard lookahead %v", a.name, b.name, delay, set.Lookahead()))
	}
	da := &NetDevice{node: a, sched: a.sched, rate: rate, delay: delay, queueLimit: queueLimit, up: true}
	db := &NetDevice{node: b, sched: b.sched, rate: rate, delay: delay, queueLimit: queueLimit, up: true}
	da.txFn, da.propFn = da.finishTx, da.arriveProp
	db.txFn, db.propFn = db.finishTx, db.arriveProp
	da.peer = db
	db.peer = da
	a.attach(da)
	b.attach(db)
	return da, db
}

// ConnectAsym joins two nodes with per-direction rates: rateAB applies
// to frames a sends toward b, rateBA to the reverse direction.
func ConnectAsym(a, b *Node, rateAB, rateBA DataRate, delay sim.Time, queueLimit int) (*NetDevice, *NetDevice) {
	da, db := Connect(a, b, rateAB, delay, queueLimit)
	db.rate = rateBA
	return da, db
}

// Node reports the node this device is attached to.
func (d *NetDevice) Node() *Node { return d.node }

// Peer reports the device at the other end of the link.
func (d *NetDevice) Peer() *NetDevice { return d.peer }

// Rate reports the egress serialization rate.
func (d *NetDevice) Rate() DataRate { return d.rate }

// SetRate changes the egress serialization rate. Takes effect for the
// next dequeued frame.
func (d *NetDevice) SetRate(r DataRate) {
	d.confineCheck("NetDevice.SetRate")
	d.rate = r
}

// QueueLimit reports the drop-tail egress queue depth.
func (d *NetDevice) QueueLimit() int { return d.queueLimit }

// SetQueueLimit changes the drop-tail depth. Takes effect for the next
// enqueue; frames already queued above the new limit are not evicted.
func (d *NetDevice) SetQueueLimit(n int) {
	d.confineCheck("NetDevice.SetQueueLimit")
	if n <= 0 {
		n = DefaultQueueLimit
	}
	d.queueLimit = n
}

// Stats returns a copy of the device counters.
func (d *NetDevice) Stats() DeviceStats {
	st := d.stats
	st.CurrentLoad = d.queue.len()
	return st
}

// IsUp reports whether the device is administratively up.
func (d *NetDevice) IsUp() bool { return d.up }

// SetUp brings the device up or down. Bringing a device down cancels
// the in-progress transmission, flushes its egress queue, and silently
// discards anything in flight toward it; this is how churn disconnects
// a Dev. Frames already propagating on the wire still arrive (and are
// dropped by the peer if it is down too).
func (d *NetDevice) SetUp(up bool) {
	d.confineCheck("NetDevice.SetUp")
	if d.up == up {
		return
	}
	d.up = up
	if !up {
		if d.transmitting {
			d.sched.Cancel(d.txEvent)
			d.transmitting = false
		}
		d.node.addQueued(-d.queue.len())
		for d.queue.len() > 0 {
			d.node.putPacket(d.queue.pop())
		}
	}
}

// Send enqueues a frame for transmission, taking ownership of pkt. The
// frame is dropped (and freed) when the device is down or the drop-tail
// queue is full.
func (d *NetDevice) Send(pkt *Packet) {
	pkt.sanCheck("NetDevice.Send")
	if !d.up {
		d.stats.DownDrops++
		d.node.putPacket(pkt)
		return
	}
	if d.queue.len() >= d.queueLimit {
		d.stats.QueueDrops++
		d.node.countDrop("drop-tail")
		d.node.putPacket(pkt)
		return
	}
	d.queue.push(pkt)
	d.node.addQueued(1)
	if d.queue.len() > d.stats.PeakQueue {
		d.stats.PeakQueue = d.queue.len()
	}
	if !d.transmitting {
		d.transmitNext()
	}
}

// transmitNext starts serializing the frame at the head of the queue.
// The completion event is remembered in txEvent so SetUp(false) can
// cancel it instead of letting a stale completion fire against a
// flushed (or refilled) queue.
func (d *NetDevice) transmitNext() {
	if !d.up || d.queue.len() == 0 {
		d.transmitting = false
		return
	}
	d.transmitting = true
	txTime := d.rate.TxTime(d.queue.peek().Size())
	d.txEvent = d.sched.ScheduleSrc(txTime, "net.tx", d.txFn)
}

// finishTx completes serialization of the head frame: it leaves the
// queue, enters the in-flight window, and its arrival at the peer is
// scheduled one propagation delay out.
func (d *NetDevice) finishTx() {
	if !d.up || d.queue.len() == 0 {
		// Unreachable in normal operation: SetUp(false) cancels the
		// completion event. Kept as a safety net.
		d.transmitting = false
		return
	}
	pkt := d.queue.pop()
	d.node.addQueued(-1)
	size := pkt.Size()
	d.stats.TxPackets++
	d.stats.TxBytes += uint64(size)
	d.node.countTx(size, pkt.Proto)
	if lp := d.node.lp; lp != nil {
		// Sharded mode: the propagating frame becomes a timestamped
		// mailbox message to the peer's LP. Ownership transfers into
		// the mailbox; the peer's shard receives (and retires) it.
		// delay >= lookahead (checked at Connect) keeps the delivery
		// time at or beyond the sender's epoch end.
		lp.Send(d.peer.node.lp, d.sched.Now()+d.delay, d.peer, pkt, nil)
	} else {
		d.inflight.push(pkt)
		d.sched.ScheduleSrc(d.delay, "net.prop", d.propFn)
	}
	d.transmitNext()
}

// HandleMsg implements sim.MsgHandler: a frame propagated across the
// shard mailbox arrives at this (receiving) device.
func (d *NetDevice) HandleMsg(_ sim.Time, a, _ any) {
	d.receive(a.(*Packet))
}

// arriveProp delivers the oldest in-flight frame to the peer. Matching
// arrivals to frames by FIFO position is sound because every flight on
// this device takes the same fixed delay and the scheduler is FIFO
// within a timestamp: arrival events fire in exactly push order.
func (d *NetDevice) arriveProp() {
	d.peer.receive(d.inflight.pop())
}

// SetLossRate makes the device drop each received frame independently
// with probability p — modeling degraded link quality (the q(h) of the
// churn model, §IV-A) below the threshold of full departure. The
// closed interval [0,1] is accepted: p = 1 models a fully dead receive
// path (every frame drops, since Float64 draws land in [0,1)) without
// tearing the link down the way SetUp(false) would, and without
// perturbing the per-frame RNG draw sequence for any p < 1.
func (d *NetDevice) SetLossRate(p float64) {
	d.confineCheck("NetDevice.SetLossRate")
	if p < 0 || p > 1 {
		panic("netsim: loss rate must be in [0,1]")
	}
	d.lossRate = p
}

// LossRate reports the configured receive-loss probability.
func (d *NetDevice) LossRate() float64 { return d.lossRate }

func (d *NetDevice) receive(pkt *Packet) {
	pkt.sanCheck("NetDevice.receive")
	if !d.up {
		d.stats.DownDrops++
		d.node.putPacket(pkt)
		return
	}
	if d.lossRate > 0 && d.sched.RNG().Float64() < d.lossRate {
		d.stats.LossDrops++
		d.node.countDrop("loss")
		d.node.putPacket(pkt)
		return
	}
	d.stats.RxPackets++
	d.stats.RxBytes += uint64(pkt.Size())
	d.node.handleReceive(d, pkt)
}

// String identifies the device by its owning node in traces.
// Addressing lives on nodes, not devices.
func (d *NetDevice) String() string {
	if d.node != nil {
		return "dev@" + d.node.Name()
	}
	return "dev@?"
}
