package netsim

import (
	"net/netip"
	"testing"

	"ddosim/internal/sim"
)

func TestOnOffAppAlternatesAndSends(t *testing.T) {
	sched, _, star := newStar(t, 7)
	src := star.AttachHost("src", 10*Mbps, sim.Millisecond, 0)
	dst := star.AttachHost("dst", 10*Mbps, sim.Millisecond, 0)
	sink, err := InstallSink(dst, 80)
	if err != nil {
		t.Fatal(err)
	}
	app, err := InstallOnOff(src, OnOffConfig{
		Dst:    netip.AddrPortFrom(dst.Addr4(), 80),
		Rate:   200 * Kbps,
		MeanOn: 2 * sim.Second, MeanOff: 2 * sim.Second,
		PacketBytes: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.Run(2 * sim.Minute); err != nil {
		t.Fatal(err)
	}
	if app.PacketsSent == 0 || sink.RxPackets() == 0 {
		t.Fatalf("sent=%d received=%d", app.PacketsSent, sink.RxPackets())
	}
	// Duty cycle ~50%: the average rate over 120 s should be roughly
	// half the ON rate (wire-size accounting adds headers).
	avg := sink.Series().AvgReceivedKbps(0, 120)
	if avg < 50 || avg > 180 {
		t.Fatalf("average rate %.1f kbps, want ~100-120 (50%% duty at 200 kbps)", avg)
	}
	// There must be quiet seconds (OFF periods) and busy ones.
	quiet, busy := 0, 0
	for sec := int64(0); sec < 120; sec++ {
		if sink.Series().BytesAt(sec) == 0 {
			quiet++
		} else {
			busy++
		}
	}
	if quiet == 0 || busy == 0 {
		t.Fatalf("no alternation: quiet=%d busy=%d", quiet, busy)
	}
}

func TestOnOffStop(t *testing.T) {
	sched, _, star := newStar(t, 7)
	src := star.AttachHost("src", 10*Mbps, sim.Millisecond, 0)
	dst := star.AttachHost("dst", 10*Mbps, sim.Millisecond, 0)
	if _, err := InstallSink(dst, 80); err != nil {
		t.Fatal(err)
	}
	app, err := InstallOnOff(src, OnOffConfig{Dst: netip.AddrPortFrom(dst.Addr4(), 80)})
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.Run(10 * sim.Second); err != nil {
		t.Fatal(err)
	}
	app.Stop()
	sent := app.PacketsSent
	if err := sched.Run(sim.Minute); err != nil {
		t.Fatal(err)
	}
	if app.PacketsSent != sent {
		t.Fatal("app kept sending after Stop")
	}
	if app.On() && app.running {
		t.Fatal("inconsistent state after Stop")
	}
}

func TestOnOffConfigValidation(t *testing.T) {
	sched := sim.NewScheduler(1)
	w := New(sched)
	star := NewStar(w)
	src := star.AttachHost("src", Mbps, 0, 0)
	if _, err := InstallOnOff(src, OnOffConfig{}); err == nil {
		t.Fatal("invalid destination accepted")
	}
	// Defaults applied for the rest.
	app, err := InstallOnOff(src, OnOffConfig{Dst: netip.MustParseAddrPort("10.0.0.9:80")})
	if err != nil {
		t.Fatal(err)
	}
	if app.rate != 100*Kbps || app.packetBytes != 512 {
		t.Fatalf("defaults = %v %d", app.rate, app.packetBytes)
	}
}
