package netsim

import (
	"net/netip"
	"strings"
	"testing"

	"ddosim/internal/sim"
)

func TestAccessors(t *testing.T) {
	sched, w, star := newStar(t, 1)
	a := star.AttachHost("a", 2*Mbps, sim.Millisecond, 0)

	if w.Sched() != sched {
		t.Fatal("Network.Sched")
	}
	if got := w.Node("a"); got != a {
		t.Fatal("Network.Node lookup")
	}
	if got := w.Node("missing"); got != nil {
		t.Fatal("missing node lookup returned non-nil")
	}
	nodes := w.Nodes()
	if len(nodes) != 2 || nodes[0].Name() != "router" {
		t.Fatalf("Nodes = %v", nodes)
	}
	if a.Network() != w {
		t.Fatal("Node.Network")
	}
	if a.String() != "a" {
		t.Fatalf("Node.String = %q", a.String())
	}

	dev := a.DefaultDevice()
	if dev.Node() != a || dev.Peer().Node().Name() != "router" {
		t.Fatal("device topology accessors")
	}
	if !dev.IsUp() {
		t.Fatal("fresh device down")
	}
	if dev.Rate() != 2*Mbps {
		t.Fatalf("Rate = %v", dev.Rate())
	}
	dev.SetRate(5 * Mbps)
	if dev.Rate() != 5*Mbps {
		t.Fatal("SetRate")
	}
	if !strings.Contains(dev.String(), "a") {
		t.Fatalf("Device.String = %q", dev.String())
	}
	if (&NetDevice{}).String() != "dev@?" {
		t.Fatal("orphan device String")
	}

	if !a.HasAddr(a.Addr4()) || a.HasAddr(netip.MustParseAddr("9.9.9.9")) {
		t.Fatal("HasAddr")
	}
	if got := len(a.Addrs()); got != 2 { // one v4 + one v6
		t.Fatalf("Addrs = %d", got)
	}
	if (100 * Kbps).BytesPerSecond() != 12500 {
		t.Fatal("BytesPerSecond")
	}
	if ProtoUDP.String() != "udp" || ProtoTCP.String() != "tcp" || Protocol(9).String() == "" {
		t.Fatal("Protocol.String")
	}
	pkt := &Packet{Proto: ProtoUDP, Src: netip.MustParseAddrPort("10.0.0.1:1"), Dst: netip.MustParseAddrPort("10.0.0.2:2")}
	if pkt.String() == "" {
		t.Fatal("Packet.String")
	}
}

func TestConnectAsymDirectionalRates(t *testing.T) {
	sched := sim.NewScheduler(1)
	w := New(sched)
	a := w.NewNode("a")
	b := w.NewNode("b")
	da, db := ConnectAsym(a, b, 10*Mbps, 100*Kbps, sim.Millisecond, 0)
	a.SetDefaultDevice(da)
	b.SetDefaultDevice(db)
	v4a, v6a := w.AllocAddrs()
	a.AddAddr(v4a)
	a.AddAddr(v6a)
	v4b, v6b := w.AllocAddrs()
	b.AddAddr(v4b)
	b.AddAddr(v6b)

	var fwdArrive, revArrive sim.Time
	if _, err := b.BindUDP(9, func(netip.AddrPort, []byte, int) { fwdArrive = sched.Now() }); err != nil {
		t.Fatal(err)
	}
	if _, err := a.BindUDP(9, func(netip.AddrPort, []byte, int) { revArrive = sched.Now() }); err != nil {
		t.Fatal(err)
	}
	sa, _ := a.BindUDP(0, nil)
	sb, _ := b.BindUDP(0, nil)
	sa.SendPadded(netip.AddrPortFrom(v4b, 9), nil, 1000)
	sb.SendPadded(netip.AddrPortFrom(v4a, 9), nil, 1000)
	if err := sched.Run(sim.Minute); err != nil {
		t.Fatal(err)
	}
	if fwdArrive == 0 || revArrive == 0 {
		t.Fatal("packets lost")
	}
	// 1042-byte frame: ~0.8 ms at 10 Mbps vs ~83 ms at 100 kbps
	// (plus 1 ms propagation each way).
	if revArrive < 20*fwdArrive {
		t.Fatalf("asymmetric rates not honored: fwd=%v rev=%v", fwdArrive, revArrive)
	}
}

func TestAttachHostAsymAndRouterDeviceFor(t *testing.T) {
	sched, _, star := newStar(t, 1)
	h := star.AttachHostAsym("h", 1*Mbps, 50*Mbps, sim.Millisecond, 0)
	rd := star.RouterDeviceFor(h)
	if rd == nil || rd.Node() != star.Router {
		t.Fatal("RouterDeviceFor")
	}
	if rd.Rate() != 50*Mbps {
		t.Fatalf("downlink rate = %v", rd.Rate())
	}
	if h.DefaultDevice().Rate() != 1*Mbps {
		t.Fatalf("uplink rate = %v", h.DefaultDevice().Rate())
	}
	other := star.Net.NewNode("offstar")
	if star.RouterDeviceFor(other) != nil {
		t.Fatal("RouterDeviceFor found a device for an unattached node")
	}
	_ = sched
}

func TestLoopbackDelivery(t *testing.T) {
	sched, _, star := newStar(t, 1)
	a := star.AttachHost("a", Mbps, sim.Millisecond, 0)
	got := 0
	if _, err := a.BindUDP(9, func(netip.AddrPort, []byte, int) { got++ }); err != nil {
		t.Fatal(err)
	}
	sock, _ := a.BindUDP(0, nil)
	sock.SendTo(netip.AddrPortFrom(a.Addr4(), 9), []byte("self"))
	if err := sched.Run(sim.Second); err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("loopback delivered %d", got)
	}
}

func TestNoRouteAndNoListenerDrops(t *testing.T) {
	sched := sim.NewScheduler(1)
	w := New(sched)
	lone := w.NewNode("lonely") // no devices at all
	v4, v6 := w.AllocAddrs()
	lone.AddAddr(v4)
	lone.AddAddr(v6)
	sock, err := lone.BindUDP(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	sock.SendTo(netip.MustParseAddrPort("10.99.99.99:9"), []byte("x"))
	if err := sched.Run(sim.Second); err != nil {
		t.Fatal(err)
	}
	if lone.LocalDrops() != 1 {
		t.Fatalf("LocalDrops = %d, want 1 (no route)", lone.LocalDrops())
	}
	// Loopback to an unbound port also counts as a local drop.
	sock.SendTo(netip.AddrPortFrom(v4, 1234), []byte("x"))
	if err := sched.Run(2 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if lone.LocalDrops() != 2 {
		t.Fatalf("LocalDrops = %d, want 2", lone.LocalDrops())
	}
}

func TestLeaveMulticastStopsDelivery(t *testing.T) {
	sched, _, star := newStar(t, 1)
	src := star.AttachHost("src", 10*Mbps, sim.Millisecond, 0)
	dev := star.AttachHost("dev", 10*Mbps, sim.Millisecond, 0)
	group := netip.MustParseAddr("ff02::1:2")
	dev.JoinMulticast(group)
	got := 0
	if _, err := dev.BindUDP(547, func(netip.AddrPort, []byte, int) { got++ }); err != nil {
		t.Fatal(err)
	}
	sock, _ := src.BindUDP(0, nil)
	dst := netip.AddrPortFrom(group, 547)
	sock.SendTo(dst, []byte("a"))
	if err := sched.Run(sim.Second); err != nil {
		t.Fatal(err)
	}
	dev.LeaveMulticast(group)
	sock.SendTo(dst, []byte("b"))
	if err := sched.Run(2 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("delivered %d, want 1 (left the group)", got)
	}
}

func TestTxTimePanicsOnZeroRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero rate accepted")
		}
	}()
	DataRate(0).TxTime(100)
}
