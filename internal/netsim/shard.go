package netsim

// Sharded-mode plumbing: the per-shard network context and the wiring
// that binds nodes to logical processes of a sim.ShardSet.
//
// In sharded mode every Node belongs to exactly one LP, every LP to
// exactly one shard, and all mutable per-packet state a node's
// handlers touch — pool, aggregate counters, flow table, trace buffer,
// confinement cell — lives in the netShard context of that shard, so a
// worker goroutine never writes another worker's memory. The only
// cross-shard channel is the kernel mailbox (NetDevice.finishTx hands
// the frame to the peer's LP as a timestamped message). Per-shard
// artifacts are merged deterministically after the run
// (obs.MergeTracers / obs.MergeFlowBuffers), so shard count stays
// unobservable in every output byte.

import (
	"fmt"

	"ddosim/internal/obs"
	"ddosim/internal/sim"
)

// netShard is the per-shard slice of the Network's mutable state.
type netShard struct {
	stats   NetworkStats // partial aggregates; summed by Network.Stats
	pp      pktPool
	flows   *FlowTable
	flowBuf *obs.FlowBuffer
	trace   *obs.Tracer
	conf    confCell
}

// EnableSharding binds the network to a sharded kernel. Must be called
// before any NewNode; from then on every NewNode consumes the LP
// installed by SetNextLP and pins the node to that LP's shard.
func (w *Network) EnableSharding(set *sim.ShardSet) {
	if len(w.nodes) > 0 {
		panic("netsim: EnableSharding after nodes were created")
	}
	if w.set != nil {
		panic("netsim: EnableSharding called twice")
	}
	w.set = set
	w.ctxs = make([]*netShard, set.NumShards())
	for i := range w.ctxs {
		w.ctxs[i] = &netShard{}
	}
	if w.trace != nil {
		w.initShardTracers()
	}
}

// Sharded reports whether the network runs on a sharded kernel.
func (w *Network) Sharded() bool { return w.set != nil }

// ShardSet returns the bound kernel, or nil in legacy mode.
func (w *Network) ShardSet() *sim.ShardSet { return w.set }

// SetNextLP installs the logical process the next NewNode call will
// bind to. Deliberately explicit and one-shot: node→LP assignment is
// part of the determinism contract and must be decided by the caller
// in a canonical, partition-independent order.
func (w *Network) SetNextLP(lp *sim.LP) { w.nextLP = lp }

// initShardTracers gives each shard context a private trace buffer
// stamped with (LP index, per-LP emission seq) so the merged stream
// orders independently of the shard count. Per-shard buffers are
// uncapped: a count-based drop cap would discard different events at
// different shard counts.
func (w *Network) initShardTracers() {
	for i, c := range w.ctxs {
		if c.trace != nil {
			continue
		}
		tr := obs.NewTracer()
		tr.SetMaxEvents(0)
		sched := w.set.Shard(i).Sched()
		tr.SetStamper(func() (uint32, uint64) {
			if lp := sched.CurLP(); lp != nil {
				return lp.Idx(), lp.NextEmit()
			}
			return 0, 0 // unattributed event; unreachable in practice
		})
		c.trace = tr
	}
}

// ShardTracers returns the per-shard trace buffers in shard order
// (nil entries when observability is not attached), for the final
// deterministic merge.
func (w *Network) ShardTracers() []*obs.Tracer {
	out := make([]*obs.Tracer, len(w.ctxs))
	for i, c := range w.ctxs {
		out[i] = c.trace
	}
	return out
}

// bindShard pins a freshly-created node to the LP installed by
// SetNextLP, consuming it.
func (w *Network) bindShard(n *Node) {
	lp := w.nextLP
	if lp == nil {
		panic(fmt.Sprintf("netsim: NewNode(%q) in sharded mode without SetNextLP", n.name))
	}
	w.nextLP = nil
	sh := lp.Shard()
	if sh.ID() >= len(w.ctxs) {
		panic(fmt.Sprintf("netsim: NewNode(%q) on the control shard; nodes must live on worker shards", n.name))
	}
	n.lp = lp
	n.shardID = sh.ID()
	n.ctx = w.ctxs[n.shardID]
	n.sched = sh.Sched()
}

// LP returns the node's logical process, or nil in legacy mode.
func (n *Node) LP() *sim.LP { return n.lp }

// ShardID returns the node's shard, or -1 in legacy mode.
func (n *Node) ShardID() int { return n.shardID }

// nextUID issues a packet id. Sharded mode namespaces the counter per
// node — (node index + 1) << 40 | per-node sequence — so ids are unique
// and id issuance is a pure function of each node's own activity,
// independent of cross-shard interleaving.
func (n *Node) nextUID() uint64 {
	if n.ctx != nil {
		n.uidSeq++
		return uint64(n.idx+1)<<40 | n.uidSeq
	}
	return n.net.NextUID()
}

// NextUID issues a unique packet id from this node's namespace.
func (n *Node) NextUID() uint64 { return n.nextUID() }

// statsCell returns the aggregate-counter cell the node's hot path
// writes: its shard context's in sharded mode, the network-wide one
// otherwise.
func (n *Node) statsCell() *NetworkStats {
	if n.ctx != nil {
		return &n.ctx.stats
	}
	return &n.net.stats
}

// tracer returns the trace buffer the node's hot path writes, or nil.
func (n *Node) tracer() *obs.Tracer {
	if n.ctx != nil {
		return n.ctx.trace
	}
	return n.net.trace
}

// countTx tallies one transmitted frame. The obs counters are atomic
// and order-free, so sharded workers may hit them concurrently.
func (n *Node) countTx(frameLen int, proto Protocol) {
	st := n.statsCell()
	st.TxFrames++
	st.TxBytes += uint64(frameLen)
	if frameLen > st.MaxFrameLen {
		st.MaxFrameLen = frameLen
	}
	w := n.net
	w.ctrTxFrames.Inc()
	w.ctrTxBytes.Add(uint64(frameLen))
	if int(proto) < len(w.ctrTxByProto) {
		w.ctrTxByProto[proto].Add(uint64(frameLen))
	}
}

// countDrop tallies one dropped frame at this node, both in the
// aggregate stats and — when observability is attached — as a counter
// increment and a trace point event identifying where the drop
// happened.
func (n *Node) countDrop(reason string) {
	n.statsCell().Drops++
	n.net.ctrDrops.Inc()
	if tr := n.tracer(); tr != nil {
		// Guarded even though Tracer is nil-safe: building the variadic
		// args slice costs an allocation per drop, which an untraced
		// flood run should not pay.
		//simlint:allow allocfree(variadic KV slice is built only when tracing is enabled; the nil-tracer guard keeps untraced runs allocation-free)
		tr.Event(n.sched.Now(), obs.CatNet, "queue-drop",
			obs.KV{K: "node", V: n.name}, obs.KV{K: "reason", V: reason})
	}
}

// addQueued adjusts the buffered-frame count. Legacy mode also tracks
// the global peak and mirrors both into gauges; sharded mode skips the
// gauges on the hot path (a racing last-write-wins gauge would be
// partition-dependent — see Network.SyncGauges) and derives the peak
// from per-device high-water marks instead.
func (n *Node) addQueued(delta int) {
	st := n.statsCell()
	st.QueuedNow += delta
	if n.ctx != nil {
		return
	}
	if st.QueuedNow > st.PeakQueued {
		st.PeakQueued = st.QueuedNow
	}
	n.net.gaugeQueued.Set(float64(st.QueuedNow))
	n.net.gaugePeak.Set(float64(st.PeakQueued))
}

// SyncGauges refreshes the queue-depth gauges from the aggregated
// stats. Sharded mode calls this at barriers (where the aggregate is
// well-defined) instead of on the per-frame hot path.
func (w *Network) SyncGauges() {
	st := w.Stats()
	w.gaugeQueued.Set(float64(st.QueuedNow))
	w.gaugePeak.Set(float64(st.PeakQueued))
}
