package netsim

import (
	"fmt"
	"net/netip"
	"sort"
	"strings"

	"ddosim/internal/sim"
)

// The paper analyzes TServer traffic with Wireshark (hardware
// scenario) and through NS-3's customizable node (simulation). This
// file provides the equivalents: a packet capture and a per-flow
// monitor, both attachable to any node.

// CaptureEntry is one captured packet record.
type CaptureEntry struct {
	At    sim.Time
	Proto Protocol
	Src   netip.AddrPort
	Dst   netip.AddrPort
	Bytes int
}

// String renders the entry in tcpdump style. Formatting is deferred to
// render time: recording stores plain values only, so a capture that is
// never printed costs zero formatting allocations per packet.
func (e CaptureEntry) String() string {
	return fmt.Sprintf("%s %s %s > %s len=%d", e.At, e.Proto, e.Src, e.Dst, e.Bytes)
}

// Capture records packets delivered at a node, like tcpdump with a
// ring buffer. When bounded, the ring overwrites its oldest entry in
// O(1) — no shifting — so a full capture costs the same per packet as
// an empty one.
type Capture struct {
	ring    []CaptureEntry // bounded ring when max > 0, else grow-only
	head    int            // index of the oldest entry (bounded mode)
	count   int            // live entries in the ring (bounded mode)
	max     int
	dropped uint64
	total   uint64
}

// StartCapture installs a capture on node keeping at most max entries
// (older entries are discarded first); max <= 0 keeps everything.
func StartCapture(node *Node, max int) *Capture {
	c := &Capture{max: max}
	if max > 0 {
		c.ring = make([]CaptureEntry, max)
	}
	node.AddTap(func(at sim.Time, pkt *Packet) {
		c.total++
		e := CaptureEntry{
			At:    at,
			Proto: pkt.Proto,
			Src:   pkt.Src,
			Dst:   pkt.Dst,
			Bytes: pkt.PayloadSize(),
		}
		if c.max <= 0 {
			c.ring = append(c.ring, e)
			c.count++
			return
		}
		if c.count == c.max {
			c.ring[c.head] = e
			c.head = (c.head + 1) % c.max
			c.dropped++
			return
		}
		c.ring[(c.head+c.count)%c.max] = e
		c.count++
	})
	return c
}

// at returns the i-th oldest live entry.
func (c *Capture) at(i int) CaptureEntry {
	if c.max <= 0 {
		return c.ring[i]
	}
	return c.ring[(c.head+i)%c.max]
}

// Len reports how many records are currently held.
func (c *Capture) Len() int { return c.count }

// Entries returns the captured records in arrival order (a copy).
func (c *Capture) Entries() []CaptureEntry {
	out := make([]CaptureEntry, c.count)
	for i := range out {
		out[i] = c.at(i)
	}
	return out
}

// Total reports how many packets were observed, including any that
// rolled out of the ring.
func (c *Capture) Total() uint64 { return c.total }

// Dropped reports how many records rolled out of the ring.
func (c *Capture) Dropped() uint64 { return c.dropped }

// FilterProto returns the captured records of one protocol.
func (c *Capture) FilterProto(p Protocol) []CaptureEntry {
	var out []CaptureEntry
	for i := 0; i < c.count; i++ {
		if e := c.at(i); e.Proto == p {
			out = append(out, e)
		}
	}
	return out
}

// BytesBetween sums payload bytes captured in [from, to).
func (c *Capture) BytesBetween(from, to sim.Time) uint64 {
	var sum uint64
	for i := 0; i < c.count; i++ {
		if e := c.at(i); e.At >= from && e.At < to {
			sum += uint64(e.Bytes)
		}
	}
	return sum
}

// String renders a short tcpdump-style listing (first entries only).
func (c *Capture) String() string {
	var b strings.Builder
	for i := 0; i < c.count; i++ {
		if i >= 20 {
			fmt.Fprintf(&b, "... %d more\n", c.count-i)
			break
		}
		b.WriteString(c.at(i).String())
		b.WriteByte('\n')
	}
	return b.String()
}

// FlowKey identifies a unidirectional transport flow.
type FlowKey struct {
	Proto Protocol
	Src   netip.AddrPort
	Dst   netip.AddrPort
}

// FlowStats aggregates one flow.
type FlowStats struct {
	Packets uint64
	Bytes   uint64
	First   sim.Time
	Last    sim.Time
}

// Rate reports the flow's mean payload rate in kbps over its
// lifetime.
func (f FlowStats) Rate() float64 {
	span := (f.Last - f.First).Seconds()
	if span <= 0 {
		return 0
	}
	return float64(f.Bytes) * 8 / 1000 / span
}

// FlowMonitor aggregates per-flow statistics at a node — the NS-3
// FlowMonitor counterpart, and the data source for the paper's
// "examine packets and a wide assortment of network metrics".
type FlowMonitor struct {
	flows map[FlowKey]*FlowStats
}

// InstallFlowMonitor attaches a monitor to node.
func InstallFlowMonitor(node *Node) *FlowMonitor {
	m := &FlowMonitor{flows: make(map[FlowKey]*FlowStats)}
	node.AddTap(func(at sim.Time, pkt *Packet) {
		key := FlowKey{Proto: pkt.Proto, Src: pkt.Src, Dst: pkt.Dst}
		st := m.flows[key]
		if st == nil {
			st = &FlowStats{First: at}
			m.flows[key] = st
		}
		st.Packets++
		st.Bytes += uint64(pkt.PayloadSize())
		st.Last = at
	})
	return m
}

// FlowCount reports the number of distinct flows observed.
func (m *FlowMonitor) FlowCount() int { return len(m.flows) }

// Flow returns the stats for one flow.
func (m *FlowMonitor) Flow(key FlowKey) (FlowStats, bool) {
	st, ok := m.flows[key]
	if !ok {
		return FlowStats{}, false
	}
	return *st, true
}

// TopTalkers returns the n flows with the most bytes, descending.
func (m *FlowMonitor) TopTalkers(n int) []struct {
	Key   FlowKey
	Stats FlowStats
} {
	type pair struct {
		Key   FlowKey
		Stats FlowStats
	}
	all := make([]pair, 0, len(m.flows))
	for k, st := range m.flows { //simlint:allow maporder(collect-then-sort: flows are byte-count-sorted before use)
		all = append(all, pair{Key: k, Stats: *st})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Stats.Bytes != all[j].Stats.Bytes {
			return all[i].Stats.Bytes > all[j].Stats.Bytes
		}
		return all[i].Key.Src.String() < all[j].Key.Src.String()
	})
	if n > len(all) {
		n = len(all)
	}
	out := make([]struct {
		Key   FlowKey
		Stats FlowStats
	}, n)
	for i := 0; i < n; i++ {
		out[i] = struct {
			Key   FlowKey
			Stats FlowStats
		}{all[i].Key, all[i].Stats}
	}
	return out
}
