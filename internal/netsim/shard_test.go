package netsim

import (
	"fmt"
	"net/netip"
	"strings"
	"testing"

	"ddosim/internal/sim"
)

// Sharded-network determinism: a star topology with cross-shard UDP
// traffic, loss, drop-tail pressure, and flow accounting must produce
// byte-identical artifacts at 1, 2, 4, and 8 shards on either queue
// backend.

const shardNetHosts = 6

func runShardNet(t *testing.T, seed int64, shards int, kind sim.QueueKind) string {
	t.Helper()
	const L = 2 * sim.Millisecond
	set := sim.NewShardSet(seed, shards, L, kind)
	w := New(set.CtlSched())
	w.EnableSharding(set)

	// Canonical LP order: router first, then hosts — the assignment
	// function may depend on the shard count, the order may not.
	w.SetNextLP(set.NewLP(0))
	star := NewStar(w)
	hosts := make([]*Node, shardNetHosts)
	socks := make([]*UDPSocket, shardNetHosts)
	for i := range hosts {
		w.SetNextLP(set.NewLP(i % shards))
		hosts[i] = star.AttachHost(fmt.Sprintf("h%d", i), 10*Mbps, L, 8)
	}
	w.EnableFlows(FlowConfig{IdleTimeout: 50 * sim.Millisecond, SweepPeriod: 10 * sim.Millisecond})
	// Degrade one router-side device so the receive path draws RNG.
	star.RouterDeviceFor(hosts[2]).SetLossRate(0.2)

	for i, h := range hosts {
		i, h := i, h
		set.WithLP(h.LP(), func() {
			var err error
			socks[i], err = h.BindUDP(9000+uint16(i), func(src netip.AddrPort, payload []byte, pad int) {})
			if err != nil {
				t.Fatalf("BindUDP: %v", err)
			}
			var tick func()
			n := 0
			tick = func() {
				n++
				dst := hosts[(i+1)%len(hosts)]
				socks[i].SendPadded(netip.AddrPortFrom(dst.Addr4(), 9000+uint16((i+1)%len(hosts))), []byte("ping"), 200+n)
				if n < 50 {
					jitter := sim.Time(h.Sched().RNG().Int63n(int64(2 * sim.Millisecond)))
					h.Sched().Schedule(700*sim.Microsecond+jitter, tick)
				}
			}
			h.Sched().Schedule(sim.Time(i+1)*300*sim.Microsecond, tick)
		})
	}

	if err := set.Run(300 * sim.Millisecond); err != nil {
		t.Fatalf("Run: %v", err)
	}
	w.StopFlows()
	w.FlushFlows(set.Now())

	var sb strings.Builder
	st := w.Stats()
	fmt.Fprintf(&sb, "tx=%d bytes=%d drops=%d queued=%d peak=%d uids=%d maxframe=%d\n",
		st.TxFrames, st.TxBytes, st.Drops, st.QueuedNow, st.PeakQueued, st.PacketUIDs, st.MaxFrameLen)
	fs := w.FlowTableStatsTotal()
	fmt.Fprintf(&sb, "flows created=%d exported=%d evicted=%d\n", fs.Created, fs.Exported, fs.Evicted)
	for i, s := range socks {
		fmt.Fprintf(&sb, "sock%d tx=%d rx=%d rxbytes=%d\n", i, s.TxDatagrams, s.RxDatagrams, s.RxBytes)
	}
	if err := w.FlowDataset().WriteCSV(&sb); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	return sb.String()
}

func TestShardedNetworkByteIdentical(t *testing.T) {
	ref := runShardNet(t, 7, 1, sim.QueueHeap)
	if !strings.Contains(ref, "udp") {
		t.Fatalf("reference artifact has no flow records:\n%s", ref)
	}
	for _, shards := range []int{1, 2, 4, 8} {
		for _, kind := range []sim.QueueKind{sim.QueueHeap, sim.QueueCalendar} {
			got := runShardNet(t, 7, shards, kind)
			if got != ref {
				t.Fatalf("shards=%d queue=%s diverged:\nref:\n%s\ngot:\n%s", shards, kind, ref, got)
			}
		}
	}
}

// TestShardedNetworkRace gives the race detector a multi-worker packet
// workload; correctness is asserted above.
func TestShardedNetworkRace(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		runShardNet(t, seed, 4, sim.QueueHeap)
	}
}
