package netsim

import (
	"fmt"
	"net/netip"
)

// Protocol identifies the transport protocol carried by a Packet.
type Protocol uint8

// Supported transport protocols.
const (
	ProtoUDP Protocol = iota + 1
	ProtoTCP
)

// String implements fmt.Stringer.
func (p Protocol) String() string {
	switch p {
	case ProtoUDP:
		return "udp"
	case ProtoTCP:
		return "tcp"
	default:
		//simlint:allow allocfree(unknown-protocol fallback only; ProtoUDP/ProtoTCP — the only values the simulator emits — return interned literals above)
		return fmt.Sprintf("proto(%d)", uint8(p))
	}
}

// Header size constants used to compute wire sizes, mirroring the real
// encapsulation NS-3 applies.
const (
	etherHeaderBytes = 14
	ipv4HeaderBytes  = 20
	ipv6HeaderBytes  = 40
	udpHeaderBytes   = 8
	tcpHeaderBytes   = 20
)

// TCPFlags is the bitset of TCP control flags on a segment.
type TCPFlags uint8

// TCP control flags.
const (
	FlagSYN TCPFlags = 1 << iota
	FlagACK
	FlagFIN
	FlagRST
)

// TCPHeader carries the fields of the simplified TCP implementation.
// Seq and Ack count bytes, as in real TCP.
type TCPHeader struct {
	Flags TCPFlags
	Seq   uint32
	Ack   uint32
}

// Packet is a simulated network packet. Payload holds the real
// application bytes (exploit payloads must survive transit verbatim);
// Pad adds virtual payload bytes that occupy wire capacity without
// being materialized, which keeps multi-gigabyte floods cheap to
// simulate.
//
// Ownership: packets are single-owner values recycled through the
// network's free list. Handing a packet to Node.SendPacket or
// NetDevice.Send transfers ownership — the network frees it into the
// pool at its terminal point (local delivery or any drop), after which
// the sender must not touch it. Callees on the receive side (PacketTap,
// IngressFilter, transport internals) see the packet only for the
// duration of the callback and must not retain the *Packet or the
// p.TCP pointer. Retaining the Payload slice IS allowed: payload
// backing arrays are never pooled, so a handler that keeps delivered
// bytes (exploit payloads, C&C commands) stays correct.
type Packet struct {
	UID     uint64
	Proto   Protocol
	Src     netip.AddrPort
	Dst     netip.AddrPort
	Payload []byte
	Pad     int
	TCP     *TCPHeader

	// san is the pool sanitizer's bookkeeping: generation stamp plus
	// alloc/release sites under -tags simdebug, a zero-size struct
	// otherwise. It sits before hdr so the zero-size case adds no
	// trailing padding to the struct.
	san sanState

	// hdr is in-struct storage for the TCP header; SetTCP points TCP at
	// it so a pooled packet's header rides the same allocation.
	hdr TCPHeader
}

// SetTCP stamps a TCP header onto the packet without allocating: the
// header lives inside the Packet struct and is recycled with it.
func (p *Packet) SetTCP(flags TCPFlags, seq, ack uint32) {
	p.sanCheck("SetTCP")
	p.hdr = TCPHeader{Flags: flags, Seq: seq, Ack: ack}
	p.TCP = &p.hdr
}

// PayloadSize reports the application-layer size in bytes, including
// virtual padding.
func (p *Packet) PayloadSize() int { return len(p.Payload) + p.Pad }

// Size reports the on-wire frame size in bytes: L2 + L3 + L4 headers
// plus the application payload.
func (p *Packet) Size() int {
	p.sanCheck("Size")
	size := etherHeaderBytes + p.PayloadSize()
	if p.Dst.Addr().Is6() {
		size += ipv6HeaderBytes
	} else {
		size += ipv4HeaderBytes
	}
	switch p.Proto {
	case ProtoTCP:
		size += tcpHeaderBytes
	default:
		size += udpHeaderBytes
	}
	return size
}

// Clone returns a deep copy of the packet. Multicast fan-out clones so
// that each recipient owns its payload.
func (p *Packet) Clone() *Packet {
	p.sanCheck("Clone")
	cp := *p
	if p.Payload != nil {
		cp.Payload = make([]byte, len(p.Payload))
		copy(cp.Payload, p.Payload)
	}
	if p.TCP != nil {
		cp.hdr = *p.TCP
		cp.TCP = &cp.hdr
	}
	cp.sanAlloc()
	return &cp
}

// String renders a compact single-line description for traces.
func (p *Packet) String() string {
	p.sanCheck("String")
	return fmt.Sprintf("%s %s->%s len=%d", p.Proto, p.Src, p.Dst, p.PayloadSize())
}
