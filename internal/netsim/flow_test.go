package netsim

import (
	"net/netip"
	"testing"

	"ddosim/internal/obs"
	"ddosim/internal/sim"
)

// flowStar builds a star with flow accounting into an obs.FlowBuffer,
// plus a src host with an unbound-port UDP socket and a dst host
// listening on port 80.
func flowStar(t testing.TB, cfg FlowConfig) (*sim.Scheduler, *Network, *obs.FlowBuffer, *UDPSocket, netip.AddrPort) {
	t.Helper()
	sched, w, star := newStar(t, 1)
	buf := &obs.FlowBuffer{}
	cfg.Sink = buf
	w.EnableFlows(cfg)
	src := star.AttachHost("src", 100*Mbps, sim.Millisecond, 0)
	dst := star.AttachHost("dst", 100*Mbps, sim.Millisecond, 0)
	if _, err := dst.BindUDP(80, nil); err != nil {
		t.Fatal(err)
	}
	sock, err := src.BindUDP(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	return sched, w, buf, sock, netip.AddrPortFrom(dst.Addr4(), 80)
}

func TestFlowTableIdleExpiry(t *testing.T) {
	sched, w, buf, sock, target := flowStar(t, FlowConfig{IdleTimeout: 2 * sim.Second})

	for i := 0; i < 5; i++ {
		sock.SendPadded(target, nil, 100)
		if err := sched.Run(sched.Now() + 100*sim.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	if w.Flows().Active() != 1 {
		t.Fatalf("active=%d, want 1", w.Flows().Active())
	}
	lastSend := sched.Now() - 100*sim.Millisecond

	// Run past the idle timeout; the sweeper closes the flow.
	if err := sched.Run(sched.Now() + 5*sim.Second); err != nil {
		t.Fatal(err)
	}
	w.Flows().Stop()
	if w.Flows().Active() != 0 {
		t.Fatalf("active=%d after idle, want 0", w.Flows().Active())
	}
	w.Flows().FlushAll(sched.Now())
	recs := buf.Records()
	if len(recs) != 1 {
		t.Fatalf("records=%d, want 1: %+v", len(recs), recs)
	}
	r := recs[0]
	if r.Reason != obs.FlowIdle {
		t.Fatalf("reason=%q, want idle", r.Reason)
	}
	if r.Packets != 5 {
		t.Fatalf("packets=%d, want 5", r.Packets)
	}
	wantBytes := 5 * uint64(etherHeaderBytes+ipv4HeaderBytes+udpHeaderBytes+100)
	if r.Bytes != wantBytes {
		t.Fatalf("bytes=%d, want %d", r.Bytes, wantBytes)
	}
	if r.EndUS != int64(lastSend/sim.Microsecond) {
		t.Fatalf("end_us=%d, want %d (last activity)", r.EndUS, int64(lastSend/sim.Microsecond))
	}
	if r.Label != "benign" {
		t.Fatalf("label=%q, want benign", r.Label)
	}
	if r.Proto != "udp" {
		t.Fatalf("proto=%q", r.Proto)
	}
}

func TestFlowTableActiveCheckpoint(t *testing.T) {
	sched, w, buf, sock, target := flowStar(t, FlowConfig{
		ActiveTimeout: 3 * sim.Second,
		IdleTimeout:   100 * sim.Second, // keep idle expiry out of the way
	})

	// Send every 500ms for 10s: the flow stays continuously active, so
	// only the active timeout can close records.
	for i := 0; i < 20; i++ {
		sock.SendPadded(target, nil, 100)
		if err := sched.Run(sched.Now() + 500*sim.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	w.Flows().Stop()
	w.Flows().FlushAll(sched.Now())

	recs := buf.Records()
	if len(recs) < 3 {
		t.Fatalf("records=%d, want >=3 (checkpoints + final)", len(recs))
	}
	var pkts uint64
	for i, r := range recs {
		pkts += r.Packets
		wantReason := obs.FlowActive
		if i == len(recs)-1 {
			wantReason = obs.FlowFinal
		}
		if r.Reason != wantReason {
			t.Fatalf("record %d reason=%q, want %q", i, r.Reason, wantReason)
		}
		if (r.EndUS-r.StartUS) > int64(3*sim.Second/sim.Microsecond) && r.Reason == obs.FlowActive {
			t.Fatalf("checkpoint %d spans %dus > active timeout", i, r.EndUS-r.StartUS)
		}
	}
	if pkts != 20 {
		t.Fatalf("total packets across records=%d, want 20", pkts)
	}
}

func TestFlowTableLabelRules(t *testing.T) {
	sched, w, buf, sock, target := flowStar(t, FlowConfig{IdleTimeout: sim.Second})
	attacker := netip.MustParseAddr("10.9.9.9")
	w.Flows().AddLabelRule(FlowLabelRule{Addr: target.Addr(), Port: 80, Label: "attack"})
	w.Flows().AddLabelRule(FlowLabelRule{Addr: attacker, Label: "cnc"})

	sock.SendPadded(target, nil, 64) // matches rule 1 (dst addr + port 80)
	if err := sched.Run(sched.Now() + 10*sim.Second); err != nil {
		t.Fatal(err)
	}
	w.Flows().Stop()
	w.Flows().FlushAll(sched.Now())
	recs := buf.Records()
	if len(recs) != 1 || recs[0].Label != "attack" {
		t.Fatalf("records %+v, want one attack-labeled flow", recs)
	}
}

func TestFlowTableEviction(t *testing.T) {
	sched, w, buf, sock, _ := flowStar(t, FlowConfig{
		MaxFlows:    4,
		IdleTimeout: 100 * sim.Second,
		SweepPeriod: 50 * sim.Second,
	})
	base := netip.MustParseAddr("10.0.7.1")
	addr := base
	for i := 0; i < 6; i++ {
		sock.SendPadded(netip.AddrPortFrom(addr, 80), nil, 64)
		addr = addr.Next()
		if err := sched.Run(sched.Now() + sim.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	ft := w.Flows()
	if ft.Active() != 4 {
		t.Fatalf("active=%d, want 4 (capped)", ft.Active())
	}
	st := ft.Stats()
	if st.Evicted != 2 {
		t.Fatalf("evicted=%d, want 2", st.Evicted)
	}
	ft.Stop()
	ft.FlushAll(sched.Now())
	recs := buf.Records()
	if len(recs) != 6 {
		t.Fatalf("records=%d, want 6", len(recs))
	}
	// The two oldest flows were evicted, in creation order.
	if recs[0].Reason != obs.FlowEvict || recs[1].Reason != obs.FlowEvict {
		t.Fatalf("oldest records %+v, want evict reason", recs[:2])
	}
	if recs[0].Dst.Addr() != base {
		t.Fatalf("first evicted dst=%v, want %v", recs[0].Dst.Addr(), base)
	}
}

// TestFlowTableSlotReuseAfterSweep pins the free-list discipline: a
// slot freed by expiry must be reusable without corrupting the
// creation-order list.
func TestFlowTableSlotReuseAfterSweep(t *testing.T) {
	sched, w, buf, sock, target := flowStar(t, FlowConfig{IdleTimeout: sim.Second})

	sock.SendPadded(target, nil, 64)
	if err := sched.Run(sched.Now() + 5*sim.Second); err != nil { // expires
		t.Fatal(err)
	}
	sock.SendPadded(target, nil, 64) // same key again: new flow, reused slot
	sock.SendPadded(netip.AddrPortFrom(target.Addr(), 81), nil, 64)
	if err := sched.Run(sched.Now() + 5*sim.Second); err != nil {
		t.Fatal(err)
	}
	w.Flows().Stop()
	w.Flows().FlushAll(sched.Now())
	recs := buf.Records()
	if len(recs) != 3 {
		t.Fatalf("records=%d, want 3: %+v", len(recs), recs)
	}
	for i, r := range recs {
		if r.Packets != 1 {
			t.Fatalf("record %d packets=%d, want 1", i, r.Packets)
		}
		if r.Reason != obs.FlowIdle {
			t.Fatalf("record %d reason=%q, want idle", i, r.Reason)
		}
	}
}

func TestFlowTableTCPFlagsAccumulate(t *testing.T) {
	sched, w, star := newStar(t, 1)
	buf := &obs.FlowBuffer{}
	w.EnableFlows(FlowConfig{Sink: buf, IdleTimeout: sim.Second})
	src := star.AttachHost("src", 100*Mbps, sim.Millisecond, 0)
	dst := star.AttachHost("dst", 100*Mbps, sim.Millisecond, 0)

	sp := netip.AddrPortFrom(src.Addr4(), 1234)
	dp := netip.AddrPortFrom(dst.Addr4(), 80)
	for _, fl := range []TCPFlags{FlagSYN, FlagACK} {
		pkt := w.AllocPacket()
		pkt.Proto = ProtoTCP
		pkt.Src, pkt.Dst = sp, dp
		pkt.Pad = 10
		pkt.SetTCP(fl, 0, 0)
		src.SendPacket(pkt)
	}
	if err := sched.Run(sched.Now() + 10*sim.Second); err != nil {
		t.Fatal(err)
	}
	w.Flows().Stop()
	w.Flows().FlushAll(sched.Now())
	// The dst's TCP host answers with a RST, so a reverse flow exists
	// too; pick the forward one.
	var fwd *obs.FlowRecord
	for i := range buf.Records() {
		if r := &buf.Records()[i]; r.Src == sp {
			fwd = r
		}
	}
	if fwd == nil {
		t.Fatalf("no forward flow in %+v", buf.Records())
	}
	want := uint8(FlagSYN | FlagACK)
	if fwd.TCPFlags != want {
		t.Fatalf("tcp_flags=%b, want %b", fwd.TCPFlags, want)
	}
	if fwd.Proto != "tcp" {
		t.Fatalf("proto=%q", fwd.Proto)
	}
}

// TestUDPFloodPathZeroAllocWithFlows pins the tentpole's hot-path
// guarantee: with flow accounting enabled, the steady-state per-packet
// cost of the UDP flood path allocates nothing. CI asserts on this
// test by name.
func TestUDPFloodPathZeroAllocWithFlows(t *testing.T) {
	if SanitizerEnabled() {
		t.Skip("simdebug sanitizer records call sites and allocates")
	}
	sched, w, star := newStar(t, 1)
	w.EnableFlows(FlowConfig{Sink: &obs.FlowBuffer{}})
	src := star.AttachHost("src", 100*Mbps, sim.Millisecond, 0)
	dst := star.AttachHost("dst", 100*Mbps, sim.Millisecond, 0)
	if _, err := dst.BindUDP(80, nil); err != nil {
		t.Fatal(err)
	}
	sock, err := src.BindUDP(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	target := netip.AddrPortFrom(dst.Addr4(), 80)

	step := func() {
		sock.SendPadded(target, nil, 512)
		if err := sched.Run(sched.Now() + 100*sim.Microsecond); err != nil {
			t.Fatal(err)
		}
	}
	// Warm the packet pool, flow table, and queue slots.
	for i := 0; i < 64; i++ {
		step()
	}
	if avg := testing.AllocsPerRun(200, step); avg != 0 {
		t.Fatalf("flood path allocates %.2f/op with flows enabled, want 0", avg)
	}
}

// BenchmarkUDPFloodPathFlows is BenchmarkUDPFloodPath with flow
// accounting enabled — the before/after pair cmd/benchjson captures.
func BenchmarkUDPFloodPathFlows(b *testing.B) {
	sched, w, star := newStar(b, 1)
	buf := &obs.FlowBuffer{}
	w.EnableFlows(FlowConfig{Sink: buf})
	src := star.AttachHost("src", 100*Mbps, sim.Millisecond, 0)
	dst := star.AttachHost("dst", 100*Mbps, sim.Millisecond, 0)
	if _, err := dst.BindUDP(80, nil); err != nil {
		b.Fatal(err)
	}
	sock, err := src.BindUDP(0, nil)
	if err != nil {
		b.Fatal(err)
	}
	target := netip.AddrPortFrom(dst.Addr4(), 80)

	sent := 0
	var pump func()
	pump = func() {
		if sent >= b.N {
			return
		}
		sent++
		sock.SendPadded(target, nil, 512)
		sched.Schedule(100*sim.Microsecond, pump)
	}
	b.ReportAllocs()
	b.ResetTimer()
	sched.Schedule(0, pump)
	// Run (not RunAll): the flow sweeper re-arms forever, so drain up
	// to a horizon past the last send instead of exhausting the queue.
	horizon := sim.Time(int64(b.N+1)) * 100 * sim.Microsecond
	if err := sched.Run(horizon); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	if sock.TxDatagrams != uint64(b.N) {
		b.Fatalf("sent %d datagrams, want %d", sock.TxDatagrams, b.N)
	}
	w.Flows().Stop()
	w.Flows().FlushAll(sched.Now())
	var pkts uint64
	for _, r := range buf.Records() {
		pkts += r.Packets
	}
	if pkts != uint64(b.N) {
		b.Fatalf("flow records account %d packets, want %d", pkts, b.N)
	}
}
