package netsim

import (
	"net/netip"
	"testing"

	"ddosim/internal/sim"
)

// BenchmarkUDPFloodPath measures the full per-datagram cost of the
// attack hot path — socket send, routing, drop-tail queue, link
// serialization, propagation, sink delivery — the loop a Mirai
// UDP-PLAIN flood drives millions of times per run. With the packet
// free list warm, the steady state should not allocate.
func BenchmarkUDPFloodPath(b *testing.B) {
	sched, _, star := newStar(b, 1)
	src := star.AttachHost("src", 100*Mbps, sim.Millisecond, 0)
	dst := star.AttachHost("dst", 100*Mbps, sim.Millisecond, 0)
	if _, err := dst.BindUDP(80, nil); err != nil {
		b.Fatal(err)
	}
	sock, err := src.BindUDP(0, nil)
	if err != nil {
		b.Fatal(err)
	}
	target := netip.AddrPortFrom(dst.Addr4(), 80)

	sent := 0
	var pump func()
	pump = func() {
		if sent >= b.N {
			return
		}
		sent++
		sock.SendPadded(target, nil, 512)
		sched.Schedule(100*sim.Microsecond, pump)
	}
	b.ReportAllocs()
	b.ResetTimer()
	sched.Schedule(0, pump)
	if err := sched.RunAll(); err != nil {
		b.Fatal(err)
	}
	if sock.TxDatagrams != uint64(b.N) {
		b.Fatalf("sent %d datagrams, want %d", sock.TxDatagrams, b.N)
	}
}
