//go:build simdebug

// Cross-validation of the static ownership analysis by the runtime
// pool sanitizer: the same deliberate use-after-release fixture that
// the pktown analyzer flags at its exact line
// (internal/lint/testdata/pktown/uaf, golden pktown_uaf.txt) must
// panic here when actually executed under -tags simdebug. The test
// lives in an external package because the fixture imports netsim.
package netsim_test

import (
	"net/netip"
	"strings"
	"testing"

	"ddosim/internal/lint/testdata/pktown/uaf"
	"ddosim/internal/netsim"
	"ddosim/internal/sim"
)

// mustPanic runs fn and returns the recovered panic message,
// failing the test if fn returns normally.
func mustPanic(t *testing.T, fn func()) string {
	t.Helper()
	var msg string
	func() {
		defer func() {
			if r := recover(); r != nil {
				msg = r.(string)
			}
		}()
		fn()
		t.Fatal("expected sanitizer panic, got normal return")
	}()
	return msg
}

func TestSanitizerEnabled(t *testing.T) {
	if !netsim.SanitizerEnabled() {
		t.Fatal("built with -tags simdebug but SanitizerEnabled() = false")
	}
}

// TestSanitizerCatchesUAFFixture executes the deliberate-violation
// fixture: the analyzer catches it statically, the sanitizer must
// catch it dynamically, with alloc and release sites in the message.
func TestSanitizerCatchesUAFFixture(t *testing.T) {
	w := netsim.New(sim.NewScheduler(1))
	msg := mustPanic(t, func() { uaf.Provoke(w) })
	for _, want := range []string{"use of released packet", "Size", "allocated at", "released at", "uaf.go"} {
		if !strings.Contains(msg, want) {
			t.Errorf("panic message missing %q:\n%s", want, msg)
		}
	}
}

func TestSanitizerCatchesDoubleRelease(t *testing.T) {
	w := netsim.New(sim.NewScheduler(1))
	p := w.AllocPacket()
	w.ReleasePacket(p)
	msg := mustPanic(t, func() { w.ReleasePacket(p) })
	if !strings.Contains(msg, "double release") || !strings.Contains(msg, "first released at") {
		t.Errorf("unexpected double-release message:\n%s", msg)
	}
}

// TestSanitizerGenerationAdvances: each recycle bumps the generation
// stamp, so a stale reference is distinguishable from the struct's
// next life.
func TestSanitizerGenerationAdvances(t *testing.T) {
	w := netsim.New(sim.NewScheduler(1))
	p := w.AllocPacket()
	g0 := p.Generation()
	w.ReleasePacket(p)
	q := w.AllocPacket()
	if q != p {
		t.Skip("free list did not recycle the same struct")
	}
	if q.Generation() != g0+1 {
		t.Fatalf("generation = %d after recycle, want %d", q.Generation(), g0+1)
	}
	w.ReleasePacket(q)
}

// TestSanitizerCleanTrafficQuiet: legitimate traffic through the full
// device/node path must not trip any check — the sanitizer's checks
// sit on the hot path, so false panics would make simdebug useless.
func TestSanitizerCleanTrafficQuiet(t *testing.T) {
	sched := sim.NewScheduler(1)
	w := netsim.New(sched)
	star := netsim.NewStar(w)
	a := star.AttachHost("a", 10*netsim.Mbps, sim.Millisecond, 0)
	b := star.AttachHost("b", 10*netsim.Mbps, sim.Millisecond, 0)
	if _, err := b.BindUDP(7, nil); err != nil {
		t.Fatal(err)
	}
	sock, err := a.BindUDP(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	dst := netip.AddrPortFrom(b.Addr4(), 7)
	for i := 0; i < 100; i++ {
		at := sim.Time(i) * sim.Millisecond
		sched.ScheduleAt(at, func() { sock.SendPadded(dst, nil, 64) })
	}
	if err := sched.RunAll(); err != nil {
		t.Fatal(err)
	}
	if st := w.PoolStats(); st.Reused == 0 {
		t.Fatalf("pool never recycled under sanitizer: %+v", st)
	}
}
