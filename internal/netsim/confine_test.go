//go:build simdebug

// Cross-validation of the shard-confinement analysis by the runtime
// confinement sanitizer: the same deliberate foreign-node mutation
// that the shardconfine analyzer flags at its exact line
// (internal/lint/testdata/confine/foreign, golden confine_foreign.txt)
// must panic here when the handler actually fires under -tags
// simdebug. Deliveries stamp the owning node; any tracked mutator
// invoked on a different node inside that window trips the check.
package netsim_test

import (
	"net/netip"
	"strings"
	"testing"

	"ddosim/internal/lint/testdata/confine/foreign"
	"ddosim/internal/netsim"
	"ddosim/internal/sim"
)

func TestConfinementEnabled(t *testing.T) {
	if !netsim.ConfinementEnabled() {
		t.Fatal("built with -tags simdebug but ConfinementEnabled() = false")
	}
}

// TestConfinementCatchesForeignFixture delivers a datagram into the
// foreign fixture's handler and asserts the sanitizer panic names the
// mutator, both nodes, and the fixture file — the dynamic half of the
// one-bug-two-catchers contract TestConfineForeign pins statically.
func TestConfinementCatchesForeignFixture(t *testing.T) {
	sched := sim.NewScheduler(1)
	w := netsim.New(sched)
	star := netsim.NewStar(w)
	a := star.AttachHost("a", 10*netsim.Mbps, sim.Millisecond, 0)
	victim := star.AttachHost("victim", 10*netsim.Mbps, sim.Millisecond, 0)
	if err := foreign.Install(a, victim, 9); err != nil {
		t.Fatal(err)
	}
	sock, err := victim.BindUDP(7, nil)
	if err != nil {
		t.Fatal(err)
	}
	sock.SendTo(netip.AddrPortFrom(a.Addr4(), 9), []byte("trigger"))
	msg := mustPanic(t, func() { _ = sched.RunAll() })
	for _, want := range []string{
		"shard-confinement violation",
		"Node.SetForwarding",
		`foreign node "victim"`,
		`owned by node "a"`,
		"foreign.go",
	} {
		if !strings.Contains(msg, want) {
			t.Errorf("panic message missing %q:\n%s", want, msg)
		}
	}
}

// TestConfinementOwnNodeQuiet: a handler mutating state on the node
// that received the packet is partition-local and must not trip the
// sanitizer.
func TestConfinementOwnNodeQuiet(t *testing.T) {
	sched := sim.NewScheduler(1)
	w := netsim.New(sched)
	star := netsim.NewStar(w)
	a := star.AttachHost("a", 10*netsim.Mbps, sim.Millisecond, 0)
	b := star.AttachHost("b", 10*netsim.Mbps, sim.Millisecond, 0)
	var got int
	_, err := a.BindUDP(9, func(src netip.AddrPort, payload []byte, pad int) {
		got++
		a.SetForwarding(true) // own-node mutation: allowed
	})
	if err != nil {
		t.Fatal(err)
	}
	sock, err := b.BindUDP(7, nil)
	if err != nil {
		t.Fatal(err)
	}
	sock.SendTo(netip.AddrPortFrom(a.Addr4(), 9), []byte("ok"))
	if err := sched.RunAll(); err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("handler ran %d times, want 1", got)
	}
}
