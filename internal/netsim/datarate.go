// Package netsim is DDoSim's packet-level network simulator — the role
// NS-3 plays in the paper. It models nodes joined by full-duplex
// point-to-point links with finite data rates, propagation delay, and
// drop-tail queues; IPv4 and IPv6 addressing (including the IPv6
// multicast delivery the Dnsmasq exploit requires); UDP datagrams; a
// simplified reliable TCP for C&C, HTTP, and telnet traffic; and a
// customizable sink node used as the attack target (TServer).
//
// The simulator is single-threaded and event-driven on top of
// internal/sim, so runs are deterministic.
package netsim

import (
	"fmt"

	"ddosim/internal/sim"
)

// DataRate is a link or device transmission rate in bits per second.
type DataRate int64

// Convenience rate constants.
const (
	BitPerSec DataRate = 1
	Kbps               = 1000 * BitPerSec
	Mbps               = 1000 * Kbps
	Gbps               = 1000 * Mbps
)

// TxTime reports the serialization delay for a frame of the given size
// in bytes at this rate.
func (r DataRate) TxTime(bytes int) sim.Time {
	if r <= 0 {
		panic("netsim: non-positive data rate")
	}
	bits := int64(bytes) * 8
	return sim.Time(bits * int64(sim.Second) / int64(r))
}

// BytesPerSecond reports the rate in bytes per second.
func (r DataRate) BytesPerSecond() float64 { return float64(r) / 8 }

// String renders the rate using the largest fitting unit.
func (r DataRate) String() string {
	switch {
	case r >= Gbps && r%Gbps == 0:
		return fmt.Sprintf("%dGbps", r/Gbps)
	case r >= Mbps && r%Mbps == 0:
		return fmt.Sprintf("%dMbps", r/Mbps)
	case r >= Kbps && r%Kbps == 0:
		return fmt.Sprintf("%dkbps", r/Kbps)
	default:
		return fmt.Sprintf("%dbps", int64(r))
	}
}
