package netsim

import (
	"net/netip"

	"ddosim/internal/metrics"
	"ddosim/internal/sim"
)

// Sink is the customized NS-3 sink application of §II-C: installed on
// the TServer node, it observes every packet delivered to the node —
// UDP floods, TCP SYN/ACK floods, anything — and logs the per-second
// received volume for later analysis.
type Sink struct {
	node   *Node
	series *metrics.Series
	sock   *UDPSocket

	rxPackets uint64
	bySource  map[netip.Addr]uint64
	byProto   map[Protocol]uint64

	suspended bool
	missed    uint64
}

// InstallSink attaches a sink application to node. It additionally
// binds the given UDP port so volumetric UDP floods are consumed
// rather than counted as local drops; all accounting happens at the
// node tap, so non-UDP attack traffic is measured too.
func InstallSink(node *Node, port uint16) (*Sink, error) {
	s := &Sink{
		node:     node,
		series:   metrics.NewSeries(),
		bySource: make(map[netip.Addr]uint64),
		byProto:  make(map[Protocol]uint64),
	}
	sock, err := node.BindUDP(port, nil)
	if err != nil {
		return nil, err
	}
	s.sock = sock
	node.AddTap(s.onPacket)
	return s, nil
}

func (s *Sink) onPacket(at sim.Time, pkt *Packet) {
	if s.suspended {
		s.missed++
		return
	}
	// Eq. 2 counts "the total size of the packets received": the full
	// on-wire frame, which is also what Wireshark reports in the
	// hardware validation — and what makes header-only SYN/ACK floods
	// measurable.
	n := pkt.Size()
	s.rxPackets++
	s.bySource[pkt.Src.Addr()] += uint64(n)
	s.byProto[pkt.Proto] += uint64(n)
	s.series.Add(at, n)
}

// Suspend models a crash of the measurement application: the UDP port
// stays bound (floods are still consumed, not refused) but nothing is
// logged until Resume. Fault injection uses this to study measurement
// outages separately from link outages.
func (s *Sink) Suspend() { s.suspended = true }

// Resume restarts logging after a Suspend.
func (s *Sink) Resume() { s.suspended = false }

// Suspended reports whether the sink is currently down.
func (s *Sink) Suspended() bool { return s.suspended }

// MissedPackets reports how many packets arrived while suspended.
func (s *Sink) MissedPackets() uint64 { return s.missed }

// Node reports the node the sink is installed on.
func (s *Sink) Node() *Node { return s.node }

// Series exposes the per-second received-bytes series.
func (s *Sink) Series() *metrics.Series { return s.series }

// RxPackets reports how many packets the sink observed.
func (s *Sink) RxPackets() uint64 { return s.rxPackets }

// DistinctSources reports how many distinct source addresses sent
// traffic to the sink — the number of bots observed attacking.
func (s *Sink) DistinctSources() int { return len(s.bySource) }

// BytesFrom reports the application bytes received from one source.
func (s *Sink) BytesFrom(a netip.Addr) uint64 { return s.bySource[a] }

// BytesByProto reports the application bytes received over one
// transport protocol.
func (s *Sink) BytesByProto(p Protocol) uint64 { return s.byProto[p] }
