package netsim

import (
	"net/netip"
	"testing"

	"ddosim/internal/sim"
)

// TestPacketPoolRecycles: a sustained UDP flow must be served from the
// free list after warm-up, not from the heap.
func TestPacketPoolRecycles(t *testing.T) {
	sched, w, star := newStar(t, 1)
	a := star.AttachHost("a", 10*Mbps, sim.Millisecond, 0)
	b := star.AttachHost("b", 10*Mbps, sim.Millisecond, 0)
	if _, err := b.BindUDP(7, nil); err != nil {
		t.Fatal(err)
	}
	sock, err := a.BindUDP(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	dst := netip.AddrPortFrom(b.Addr4(), 7)
	for i := 0; i < 200; i++ {
		at := sim.Time(i) * 10 * sim.Millisecond
		sched.ScheduleAt(at, func() { sock.SendPadded(dst, nil, 64) })
	}
	if err := sched.RunAll(); err != nil {
		t.Fatal(err)
	}
	st := w.PoolStats()
	if st.Reused == 0 {
		t.Fatalf("pool never reused a packet: %+v", st)
	}
	// Spaced sends mean at most a couple of packets are ever live at
	// once; everything after warm-up must recycle.
	if st.Allocated > 8 {
		t.Fatalf("pool allocated %d packets for a serialized flow: %+v", st.Allocated, st)
	}
}

// TestPooledCloneIsolation: clones made for multicast fan-out must not
// share payload or header storage with the original.
func TestPooledCloneIsolation(t *testing.T) {
	sched := sim.NewScheduler(1)
	w := New(sched)
	p := w.AllocPacket()
	p.Payload = []byte{1, 2, 3}
	p.SetTCP(FlagSYN, 7, 8)
	cp := w.clonePacket(p)
	cp.Payload[0] = 99
	cp.TCP.Seq = 100
	if p.Payload[0] != 1 || p.TCP.Seq != 7 {
		t.Fatal("clonePacket shares state with original")
	}
	if cp.TCP != &cp.hdr {
		t.Fatal("clone's TCP header does not use in-struct storage")
	}
}

// TestSetTCPCloneFixup: Packet.Clone on a SetTCP packet must rebind the
// header pointer to the clone's own storage.
func TestSetTCPCloneFixup(t *testing.T) {
	p := &Packet{}
	p.SetTCP(FlagACK, 1, 2)
	c := p.Clone()
	if c.TCP == p.TCP {
		t.Fatal("Clone shares TCP header storage with original")
	}
	c.TCP.Ack = 9
	if p.TCP.Ack != 2 {
		t.Fatal("mutating clone header leaked into original")
	}
}

// TestPktRingFIFO exercises the ring through growth and wrap-around.
func TestPktRingFIFO(t *testing.T) {
	var r pktRing
	mk := func(uid uint64) *Packet { return &Packet{UID: uid} }
	next := uint64(0)
	out := uint64(0)
	for round := 0; round < 50; round++ {
		for i := 0; i < 7; i++ {
			next++
			r.push(mk(next))
		}
		for i := 0; i < 5; i++ {
			out++
			if got := r.pop(); got.UID != out {
				t.Fatalf("pop = %d, want %d", got.UID, out)
			}
		}
	}
	for r.len() > 0 {
		out++
		if got := r.pop(); got.UID != out {
			t.Fatalf("drain pop = %d, want %d", got.UID, out)
		}
	}
	if out != next {
		t.Fatalf("drained %d, pushed %d", out, next)
	}
}
