package netsim

import (
	"bytes"
	"errors"
	"net/netip"
	"testing"

	"ddosim/internal/sim"
)

// tcpPair builds a star with two hosts and returns them plus the
// scheduler.
func tcpPair(t testing.TB) (*sim.Scheduler, *Node, *Node, *Star) {
	t.Helper()
	sched := sim.NewScheduler(11)
	w := New(sched)
	star := NewStar(w)
	a := star.AttachHost("client", 10*Mbps, sim.Millisecond, 0)
	b := star.AttachHost("server", 10*Mbps, sim.Millisecond, 0)
	return sched, a, b, star
}

func TestTCPHandshakeAndEcho(t *testing.T) {
	sched, client, server, _ := tcpPair(t)

	if _, err := server.ListenTCP(23, func(c *TCPConn) {
		c.SetDataHandler(func(data []byte) {
			if err := c.Send(append([]byte("echo:"), data...)); err != nil {
				t.Errorf("server send: %v", err)
			}
		})
	}); err != nil {
		t.Fatal(err)
	}

	var got bytes.Buffer
	established := false
	client.DialTCP(netip.AddrPortFrom(server.Addr4(), 23), func(c *TCPConn, err error) {
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		established = true
		c.SetDataHandler(func(data []byte) { got.Write(data) })
		if err := c.Send([]byte("hello")); err != nil {
			t.Errorf("client send: %v", err)
		}
	})
	if err := sched.Run(5 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if !established {
		t.Fatal("connection not established")
	}
	if got.String() != "echo:hello" {
		t.Fatalf("echoed %q", got.String())
	}
}

func TestTCPServerSendsFirstFromAcceptCallback(t *testing.T) {
	// Regression: data queued inside the accept callback runs while
	// the final handshake ACK is still being processed; the SYN's
	// sequence slot must not be charged against the first payload
	// byte (this once ate the 'l' of a "login: " banner).
	sched, client, server, _ := tcpPair(t)
	if _, err := server.ListenTCP(23, func(c *TCPConn) {
		if err := c.Send([]byte("login: ")); err != nil {
			t.Errorf("banner send: %v", err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	client.DialTCP(netip.AddrPortFrom(server.Addr4(), 23), func(c *TCPConn, err error) {
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		c.SetDataHandler(func(data []byte) { got.Write(data) })
	})
	if err := sched.Run(5 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if got.String() != "login: " {
		t.Fatalf("banner = %q, want %q", got.String(), "login: ")
	}
}

func TestTCPLargeTransfer(t *testing.T) {
	sched, client, server, _ := tcpPair(t)

	// 200 KB spans many windows; verifies go-back-N bookkeeping.
	payload := make([]byte, 200*1024)
	for i := range payload {
		payload[i] = byte(i * 31)
	}

	var got bytes.Buffer
	if _, err := server.ListenTCP(80, func(c *TCPConn) {
		c.SetDataHandler(func(data []byte) { got.Write(data) })
	}); err != nil {
		t.Fatal(err)
	}
	client.DialTCP(netip.AddrPortFrom(server.Addr4(), 80), func(c *TCPConn, err error) {
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		if err := c.Send(payload); err != nil {
			t.Errorf("send: %v", err)
		}
	})
	if err := sched.Run(30 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), payload) {
		t.Fatalf("transfer corrupted: got %d bytes, want %d", got.Len(), len(payload))
	}
}

func TestTCPConnectionRefused(t *testing.T) {
	sched, client, server, _ := tcpPair(t)
	var dialErr error
	done := false
	client.DialTCP(netip.AddrPortFrom(server.Addr4(), 9999), func(c *TCPConn, err error) {
		dialErr = err
		done = true
	})
	if err := sched.Run(10 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("dial callback never fired")
	}
	if dialErr == nil {
		t.Fatal("dial to closed port succeeded")
	}
}

func TestTCPDialTimeoutWhenPeerDown(t *testing.T) {
	sched, client, server, _ := tcpPair(t)
	server.DefaultDevice().SetUp(false)
	var dialErr error
	client.DialTCP(netip.AddrPortFrom(server.Addr4(), 23), func(c *TCPConn, err error) {
		dialErr = err
	})
	if err := sched.Run(2 * sim.Minute); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(dialErr, ErrConnRefused) {
		t.Fatalf("dial err = %v, want ErrConnRefused", dialErr)
	}
}

func TestTCPGracefulClose(t *testing.T) {
	sched, client, server, _ := tcpPair(t)

	var serverClosed, clientClosed bool
	var serverErr, clientErr error
	if _, err := server.ListenTCP(23, func(c *TCPConn) {
		c.SetCloseHandler(func(err error) { serverClosed, serverErr = true, err })
	}); err != nil {
		t.Fatal(err)
	}
	client.DialTCP(netip.AddrPortFrom(server.Addr4(), 23), func(c *TCPConn, err error) {
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		c.SetCloseHandler(func(err error) { clientClosed, clientErr = true, err })
		if err := c.Send([]byte("bye")); err != nil {
			t.Errorf("send: %v", err)
		}
		c.Close()
	})
	if err := sched.Run(10 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if !serverClosed || !clientClosed {
		t.Fatalf("close handlers: server=%v client=%v", serverClosed, clientClosed)
	}
	if serverErr != nil || clientErr != nil {
		t.Fatalf("graceful close reported errors: server=%v client=%v", serverErr, clientErr)
	}
}

func TestTCPDataBeforeClose(t *testing.T) {
	sched, client, server, _ := tcpPair(t)
	var got bytes.Buffer
	if _, err := server.ListenTCP(23, func(c *TCPConn) {
		c.SetDataHandler(func(data []byte) { got.Write(data) })
	}); err != nil {
		t.Fatal(err)
	}
	big := bytes.Repeat([]byte("data"), 20000) // 80 KB then close
	client.DialTCP(netip.AddrPortFrom(server.Addr4(), 23), func(c *TCPConn, err error) {
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		if err := c.Send(big); err != nil {
			t.Errorf("send: %v", err)
		}
		c.Close() // must flush all buffered data first
	})
	if err := sched.Run(30 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if got.Len() != len(big) {
		t.Fatalf("received %d bytes before close, want %d", got.Len(), len(big))
	}
}

func TestTCPAbortResetsPeer(t *testing.T) {
	sched, client, server, _ := tcpPair(t)
	var serverErr error
	gotReset := false
	if _, err := server.ListenTCP(23, func(c *TCPConn) {
		c.SetCloseHandler(func(err error) { gotReset, serverErr = true, err })
	}); err != nil {
		t.Fatal(err)
	}
	client.DialTCP(netip.AddrPortFrom(server.Addr4(), 23), func(c *TCPConn, err error) {
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		// Give the server a moment to fully establish, then abort.
		client.Sched().Schedule(100*sim.Millisecond, c.Abort)
	})
	if err := sched.Run(10 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if !gotReset {
		t.Fatal("server close handler never fired after Abort")
	}
	if !errors.Is(serverErr, ErrConnReset) {
		t.Fatalf("server close err = %v, want ErrConnReset", serverErr)
	}
}

func TestTCPPeerDeathTimesOut(t *testing.T) {
	sched, client, server, _ := tcpPair(t)
	var closeErr error
	closed := false
	if _, err := server.ListenTCP(23, func(c *TCPConn) {}); err != nil {
		t.Fatal(err)
	}
	client.DialTCP(netip.AddrPortFrom(server.Addr4(), 23), func(c *TCPConn, err error) {
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		c.SetCloseHandler(func(err error) { closed, closeErr = true, err })
		// Kill the server's link (churn) from a control-plane event —
		// not from inside the client's handler, where the confinement
		// sanitizer would rightly flag the foreign-node mutation —
		// then try to send: the data is never acked and the connection
		// must time out.
		sched.Schedule(0, func() {
			server.DefaultDevice().SetUp(false)
			if err := c.Send([]byte("are you there?")); err != nil {
				t.Errorf("send: %v", err)
			}
		})
	})
	if err := sched.Run(5 * sim.Minute); err != nil {
		t.Fatal(err)
	}
	if !closed {
		t.Fatal("connection to dead peer never timed out")
	}
	if !errors.Is(closeErr, ErrConnTimeout) {
		t.Fatalf("close err = %v, want ErrConnTimeout", closeErr)
	}
}

func TestTCPRetransmitSurvivesTransientOutage(t *testing.T) {
	sched, client, server, _ := tcpPair(t)
	var got bytes.Buffer
	if _, err := server.ListenTCP(23, func(c *TCPConn) {
		c.SetDataHandler(func(data []byte) { got.Write(data) })
	}); err != nil {
		t.Fatal(err)
	}
	client.DialTCP(netip.AddrPortFrom(server.Addr4(), 23), func(c *TCPConn, err error) {
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		// Brief outage right as data goes out: retransmission recovers.
		// The outage toggles run as control-plane events, not inside
		// the client's handler (the confinement sanitizer would flag
		// the foreign-node mutation there).
		sched.Schedule(0, func() {
			server.DefaultDevice().SetUp(false)
			if err := c.Send([]byte("persistent")); err != nil {
				t.Errorf("send: %v", err)
			}
		})
		client.Sched().Schedule(500*sim.Millisecond, func() {
			server.DefaultDevice().SetUp(true)
		})
	})
	if err := sched.Run(sim.Minute); err != nil {
		t.Fatal(err)
	}
	if got.String() != "persistent" {
		t.Fatalf("after outage got %q", got.String())
	}
}

func TestTCPSendAfterCloseFails(t *testing.T) {
	sched, client, server, _ := tcpPair(t)
	if _, err := server.ListenTCP(23, func(c *TCPConn) {}); err != nil {
		t.Fatal(err)
	}
	var sendErr error
	client.DialTCP(netip.AddrPortFrom(server.Addr4(), 23), func(c *TCPConn, err error) {
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		c.Close()
		sendErr = c.Send([]byte("too late"))
	})
	if err := sched.Run(10 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if sendErr == nil {
		t.Fatal("Send after Close succeeded")
	}
}

func TestTCPMultipleConcurrentConns(t *testing.T) {
	sched, _, server, star := tcpPair(t)
	const n = 10
	received := make(map[string]string)
	if _, err := server.ListenTCP(23, func(c *TCPConn) {
		c.SetDataHandler(func(data []byte) {
			received[c.RemoteAddr().String()] += string(data)
		})
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		h := star.AttachHost("h"+string(rune('a'+i)), 10*Mbps, sim.Millisecond, 0)
		msg := []byte{byte('0' + i)}
		h.DialTCP(netip.AddrPortFrom(server.Addr4(), 23), func(c *TCPConn, err error) {
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			if err := c.Send(msg); err != nil {
				t.Errorf("send: %v", err)
			}
		})
	}
	if err := sched.Run(10 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if len(received) != n {
		t.Fatalf("server saw %d connections, want %d", len(received), n)
	}
}

func TestTCPListenerClose(t *testing.T) {
	sched, client, server, _ := tcpPair(t)
	l, err := server.ListenTCP(23, func(c *TCPConn) { t.Error("accepted after close") })
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	var dialErr error
	client.DialTCP(netip.AddrPortFrom(server.Addr4(), 23), func(c *TCPConn, err error) {
		dialErr = err
	})
	if err := sched.Run(sim.Minute); err != nil {
		t.Fatal(err)
	}
	if dialErr == nil {
		t.Fatal("dial to closed listener succeeded")
	}
}

func TestTCPDuplicateListen(t *testing.T) {
	_, _, server, _ := tcpPair(t)
	if _, err := server.ListenTCP(23, func(*TCPConn) {}); err != nil {
		t.Fatal(err)
	}
	if _, err := server.ListenTCP(23, func(*TCPConn) {}); err == nil {
		t.Fatal("duplicate listen succeeded")
	}
}

func TestSeqArithmetic(t *testing.T) {
	if !seqLT(1, 2) || seqLT(2, 1) {
		t.Fatal("seqLT basic")
	}
	// Wraparound: 0xFFFFFFFF < 5 in sequence space.
	if !seqLT(0xFFFFFFFF, 5) {
		t.Fatal("seqLT wraparound")
	}
	if !seqLEq(7, 7) {
		t.Fatal("seqLEq equality")
	}
}

func TestTCPIPv6(t *testing.T) {
	sched, client, server, _ := tcpPair(t)
	var got bytes.Buffer
	if _, err := server.ListenTCP(80, func(c *TCPConn) {
		c.SetDataHandler(func(data []byte) { got.Write(data) })
	}); err != nil {
		t.Fatal(err)
	}
	client.DialTCP(netip.AddrPortFrom(server.Addr6(), 80), func(c *TCPConn, err error) {
		if err != nil {
			t.Errorf("dial v6: %v", err)
			return
		}
		if !c.LocalAddr().Addr().Is6() {
			t.Errorf("local addr %v is not IPv6", c.LocalAddr())
		}
		if err := c.Send([]byte("over v6")); err != nil {
			t.Errorf("send: %v", err)
		}
	})
	if err := sched.Run(10 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if got.String() != "over v6" {
		t.Fatalf("got %q", got.String())
	}
}
