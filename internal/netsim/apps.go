package netsim

import (
	"fmt"
	"net/netip"

	"ddosim/internal/sim"
)

// OnOffApp is the counterpart of NS-3's OnOffApplication: it
// alternates exponentially-distributed ON periods — during which it
// emits fixed-size datagrams at a configured rate — with OFF silences.
// DDoSim uses it for the benign background traffic that defense
// experiments mix with attack floods.
type OnOffApp struct {
	node *Node
	sock *UDPSocket
	dst  netip.AddrPort

	rate        DataRate
	packetBytes int
	meanOn      sim.Time
	meanOff     sim.Time

	on      bool
	running bool

	// PacketsSent counts emitted datagrams.
	PacketsSent uint64
}

// OnOffConfig parameterizes an OnOffApp.
type OnOffConfig struct {
	// Dst is the traffic destination.
	Dst netip.AddrPort
	// Rate is the sending rate while ON. Default 100 kbps.
	Rate DataRate
	// PacketBytes is the datagram payload size. Default 512.
	PacketBytes int
	// MeanOn/MeanOff are the exponential period means. Defaults 1 s
	// each.
	MeanOn  sim.Time
	MeanOff sim.Time
}

// InstallOnOff creates and starts an OnOff application on node.
func InstallOnOff(node *Node, cfg OnOffConfig) (*OnOffApp, error) {
	if !cfg.Dst.IsValid() {
		return nil, fmt.Errorf("netsim: onoff: invalid destination")
	}
	if cfg.Rate <= 0 {
		cfg.Rate = 100 * Kbps
	}
	if cfg.PacketBytes <= 0 {
		cfg.PacketBytes = 512
	}
	if cfg.MeanOn <= 0 {
		cfg.MeanOn = sim.Second
	}
	if cfg.MeanOff <= 0 {
		cfg.MeanOff = sim.Second
	}
	sock, err := node.BindUDP(0, nil)
	if err != nil {
		return nil, err
	}
	app := &OnOffApp{
		node:        node,
		sock:        sock,
		dst:         cfg.Dst,
		rate:        cfg.Rate,
		packetBytes: cfg.PacketBytes,
		meanOn:      cfg.MeanOn,
		meanOff:     cfg.MeanOff,
		running:     true,
	}
	app.enterOff() // begin with a silence so fleets desynchronize
	return app, nil
}

// Stop halts the application permanently.
func (a *OnOffApp) Stop() { a.running = false }

// On reports whether the app is currently in an ON period.
func (a *OnOffApp) On() bool { return a.on }

func (a *OnOffApp) expDelay(mean sim.Time) sim.Time {
	d := sim.Time(a.node.sched.RNG().ExpFloat64() * float64(mean))
	if d < sim.Millisecond {
		d = sim.Millisecond
	}
	return d
}

func (a *OnOffApp) enterOn() {
	if !a.running {
		return
	}
	a.on = true
	a.node.sched.Schedule(a.expDelay(a.meanOn), a.enterOff)
	a.emit()
}

func (a *OnOffApp) enterOff() {
	a.on = false
	if !a.running {
		return
	}
	a.node.sched.Schedule(a.expDelay(a.meanOff), a.enterOn)
}

func (a *OnOffApp) emit() {
	if !a.running || !a.on {
		return
	}
	a.sock.SendPadded(a.dst, nil, a.packetBytes)
	a.PacketsSent++
	wire := (&Packet{Proto: ProtoUDP, Dst: a.dst, Pad: a.packetBytes}).Size()
	a.node.sched.Schedule(a.rate.TxTime(wire), a.emit)
}
