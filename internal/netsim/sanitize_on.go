//go:build simdebug

package netsim

// simdebug build: the runtime half of the pooled-packet lifetime
// tooling, cross-validating the pktown/stalecapture static analyzers
// in internal/lint. The protocol, AddressSanitizer-style:
//
//   - release stamps the packet (generation bump, release site),
//     zeroes it, then poisons the user-visible scalar fields with
//     sentinel values so stale readers see garbage deterministically;
//   - re-allocation from the free list clears the poison and records
//     the new alloc site;
//   - every packet touchpoint (Size, SetTCP, Clone, String, the
//     device/node send and receive paths) checks the released bit and
//     panics with the operation plus the alloc/release sites.
//
// The checks live behind method calls that compile to no-ops without
// this tag (sanitize_off.go), so arming the sanitizer is purely a
// build-tag decision: `go test -tags simdebug ./internal/netsim/...`.

import (
	"fmt"
	"runtime"
	"strings"
)

// sanState rides inside every Packet (before hdr) under simdebug.
type sanState struct {
	// gen counts recycles of this struct: bumped at every release, so
	// a reference that outlives a release can be told apart from the
	// packet's next life — the same generation-stamp idea the
	// scheduler uses for event slots.
	gen      uint64
	released bool
	allocAt  string
	freedAt  string
}

// Poison patterns written into released packets. The UID sentinel is
// the classic heap-poison constant; Pad is made hugely negative so
// any wire-size computation on a stale packet produces an absurd
// value even if the panic were somehow bypassed.
const (
	poisonUID uint64 = 0xdeadbeefdeadbeef
	poisonPad int    = -0x5eedfeed
)

// sanSite reports the first interesting caller frame — skipping the
// sanitizer itself and the pool/packet internals, so the recorded
// site is the application-level line that allocated or released.
func sanSite() string {
	pcs := make([]uintptr, 24)
	n := runtime.Callers(2, pcs)
	frames := runtime.CallersFrames(pcs[:n])
	last := "unknown"
	for {
		f, more := frames.Next()
		last = fmt.Sprintf("%s:%d", f.File, f.Line)
		if !strings.HasSuffix(f.File, "/sanitize_on.go") &&
			!strings.HasSuffix(f.File, "/pool.go") &&
			!strings.HasSuffix(f.File, "/packet.go") {
			return last
		}
		if !more {
			return last
		}
	}
}

// sanAlloc marks p live and records where. The generation survives
// from the previous life (it is bumped at release, not here).
func (p *Packet) sanAlloc() {
	p.san.released = false
	p.san.allocAt = sanSite()
	p.san.freedAt = ""
}

// sanUnpoison clears the poison pattern when a packet leaves the free
// list, restoring the zeroed-struct contract of putPacket.
func (p *Packet) sanUnpoison() {
	p.UID = 0
	p.Pad = 0
}

// sanRelease stamps a release; a second release of the same live-ness
// is the double-free the pool cannot survive silently.
func (p *Packet) sanRelease() {
	if p.san.released {
		panic(fmt.Sprintf(
			"netsim: double release of pooled packet at %s (allocated at %s, first released at %s)",
			sanSite(), p.san.allocAt, p.san.freedAt))
	}
	p.san.released = true
	p.san.gen++
	p.san.freedAt = sanSite()
}

// sanPoison writes the sentinel patterns; applied after putPacket has
// zeroed the struct.
func (p *Packet) sanPoison() {
	p.UID = poisonUID
	p.Pad = poisonPad
}

// sanCheck panics if p was released: this is the use-after-release
// the exploit chain of the paper weaponizes, caught at the first
// touch instead of as silent cross-flow corruption.
func (p *Packet) sanCheck(op string) {
	if p.san.released {
		panic(fmt.Sprintf(
			"netsim: use of released packet: %s at %s (allocated at %s, released at %s, generation %d)",
			op, sanSite(), p.san.allocAt, p.san.freedAt, p.san.gen))
	}
}

// SanitizerEnabled reports whether this binary carries the simdebug
// pool sanitizer.
func SanitizerEnabled() bool { return true }

// Generation reports how many times this packet struct has been
// recycled through the free list.
func (p *Packet) Generation() uint64 { return p.san.gen }
