package netsim

import (
	"fmt"
	"net/netip"
	"sort"

	"ddosim/internal/sim"
)

// PacketTap observes packets as a node delivers them locally. Taps feed
// TServer's per-second accounting and the defense feature extractor.
type PacketTap func(at sim.Time, pkt *Packet)

// Node is a simulated network endpoint or router, the counterpart of
// ns3::Node. A node owns devices, local addresses, a host-route table
// (sufficient for DDoSim's star topology), transport demultiplexers,
// and optional applications.
type Node struct {
	name  string
	net   *Network
	sched *sim.Scheduler

	// Sharded-mode identity (see shard.go): the node's logical
	// process, its shard, its creation index (UID namespace), its
	// per-node UID sequence, and its shard context. ctx is nil in
	// legacy mode; shardID is -1 there.
	lp      *sim.LP
	ctx     *netShard
	shardID int
	idx     int
	uidSeq  uint64

	devs   []*NetDevice
	addrs  map[netip.Addr]bool
	routes map[netip.Addr]*NetDevice
	defDev *NetDevice

	forward   bool
	multicast map[netip.Addr]bool

	udpPorts map[uint16]*UDPSocket
	tcp      *tcpHost

	taps   []PacketTap
	filter IngressFilter

	localDrops  uint64
	filterDrops uint64
}

// IngressFilter inspects a packet about to be delivered locally and
// reports whether to accept it. Rejected packets are dropped before
// taps or sockets see them — a host firewall, the deployment point
// for the §V-A mitigation use case.
type IngressFilter func(pkt *Packet) bool

// Name reports the node's display name.
func (n *Node) Name() string { return n.name }

// Sched exposes the scheduler driving this node.
func (n *Node) Sched() *sim.Scheduler { return n.sched }

// Network reports the network this node belongs to.
func (n *Node) Network() *Network { return n.net }

// SetForwarding enables IP forwarding, turning the node into a router.
func (n *Node) SetForwarding(on bool) {
	n.confineCheck("Node.SetForwarding")
	n.forward = on
}

// AddAddr assigns an address to the node. Nodes may hold both IPv4 and
// IPv6 addresses (DDoSim is dual-stack; the Dnsmasq exploit needs v6).
func (n *Node) AddAddr(a netip.Addr) {
	n.confineCheck("Node.AddAddr")
	n.addrs[a] = true
}

// HasAddr reports whether the node owns address a.
func (n *Node) HasAddr(a netip.Addr) bool { return n.addrs[a] }

// Addrs returns the node's addresses in sorted order.
func (n *Node) Addrs() []netip.Addr {
	out := make([]netip.Addr, 0, len(n.addrs))
	for a := range n.addrs { //simlint:allow maporder(collect-then-sort: addresses are sorted before return)
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// Addr4 returns the node's first IPv4 address, or the zero Addr.
func (n *Node) Addr4() netip.Addr { return n.firstAddr(false) }

// Addr6 returns the node's first IPv6 address, or the zero Addr.
func (n *Node) Addr6() netip.Addr { return n.firstAddr(true) }

func (n *Node) firstAddr(v6 bool) netip.Addr {
	var best netip.Addr
	for a := range n.addrs { //simlint:allow maporder(order-independent min reduction over pure netip.Addr comparisons)
		if a.Is6() != v6 {
			continue
		}
		if !best.IsValid() || a.Less(best) {
			best = a
		}
	}
	return best
}

// AddRoute installs a host route: packets destined to dst leave via dev.
func (n *Node) AddRoute(dst netip.Addr, dev *NetDevice) {
	n.confineCheck("Node.AddRoute")
	n.routes[dst] = dev
}

// SetDefaultDevice installs the device used when no host route matches —
// the single uplink of a leaf host.
func (n *Node) SetDefaultDevice(dev *NetDevice) {
	n.confineCheck("Node.SetDefaultDevice")
	n.defDev = dev
}

// DefaultDevice reports the node's default (uplink) device, or nil.
func (n *Node) DefaultDevice() *NetDevice { return n.defDev }

// JoinMulticast subscribes the node to group (e.g. ff02::1:2, the
// All-DHCP-Relay-Agents-and-Servers group Dnsmasq listens on).
func (n *Node) JoinMulticast(group netip.Addr) {
	n.confineCheck("Node.JoinMulticast")
	if !group.IsMulticast() {
		panic(fmt.Sprintf("netsim: JoinMulticast(%s): not a multicast address", group))
	}
	n.multicast[group] = true
}

// LeaveMulticast unsubscribes the node from group.
func (n *Node) LeaveMulticast(group netip.Addr) {
	n.confineCheck("Node.LeaveMulticast")
	delete(n.multicast, group)
}

// AddTap registers an observer for locally-delivered packets.
func (n *Node) AddTap(tap PacketTap) {
	n.confineCheck("Node.AddTap")
	n.taps = append(n.taps, tap)
}

// SetFilter installs (or, with nil, removes) the node's ingress
// filter.
func (n *Node) SetFilter(f IngressFilter) {
	n.confineCheck("Node.SetFilter")
	n.filter = f
}

// FilterDrops reports packets rejected by the ingress filter.
func (n *Node) FilterDrops() uint64 { return n.filterDrops }

// LocalDrops reports packets addressed to this node that found no
// listening socket.
func (n *Node) LocalDrops() uint64 { return n.localDrops }

func (n *Node) attach(d *NetDevice) {
	n.devs = append(n.devs, d)
	if n.defDev == nil {
		n.defDev = d
	}
}

// SendPacket routes a locally-originated packet: delivered in place when
// addressed to this node, otherwise queued on the route's device.
// SendPacket takes ownership of pkt (see Packet).
//
//simlint:hotpath
func (n *Node) SendPacket(pkt *Packet) {
	pkt.sanCheck("Node.SendPacket")
	if ft := n.flowTable(); ft != nil {
		// Flow accounting happens at origination so records describe
		// offered load; see flow.go.
		ft.record(pkt, n.sched.Now())
	}
	dst := pkt.Dst.Addr()
	if n.addrs[dst] {
		// Loopback: deliver after a negligible local delay to keep
		// event ordering sane. SendPacket owns pkt by contract (not a
		// borrow as the analyzer must assume for parameters), the event
		// cannot be cancelled, and the callback itself releases the
		// packet — audited 2026-08: ownership moves into the callback.
		// The closure allocation is loopback-only: the flood hot path
		// egresses through dev.Send below and never takes this branch.
		//simlint:allow stalecapture,allocfree(SendPacket owns pkt and transfers it into the uncancellable loopback event, which releases it; self-addressed traffic only, off the device-tx flood path)
		n.sched.Schedule(sim.Microsecond, func() {
			prev := confineEnter(n)
			defer confineExit(n, prev)
			n.deliverLocal(pkt)
			n.putPacket(pkt)
		})
		return
	}
	dev := n.lookupRoute(dst)
	if dev == nil {
		n.localDrops++
		n.putPacket(pkt)
		return
	}
	dev.Send(pkt)
}

func (n *Node) lookupRoute(dst netip.Addr) *NetDevice {
	if dev, ok := n.routes[dst]; ok {
		return dev
	}
	return n.defDev
}

// handleReceive is the node's IP input path. It owns pkt: the packet is
// either handed on to an egress device (forwarding) or freed here after
// its terminal delivery or drop. While it runs, this node is the
// executing partition for the simdebug confinement sanitizer.
//
//simlint:hotpath
func (n *Node) handleReceive(in *NetDevice, pkt *Packet) {
	prev := confineEnter(n)
	defer confineExit(n, prev)
	n.receiveIP(in, pkt)
}

func (n *Node) receiveIP(in *NetDevice, pkt *Packet) {
	dst := pkt.Dst.Addr()
	switch {
	case dst.IsMulticast():
		if n.multicast[dst] {
			n.deliverLocal(pkt)
		}
		if n.forward {
			n.floodMulticast(in, pkt)
		}
		n.putPacket(pkt)
	case n.addrs[dst]:
		n.deliverLocal(pkt)
		n.putPacket(pkt)
	case n.forward:
		dev := n.lookupRoute(dst)
		if dev == nil || dev == in {
			n.localDrops++
			n.putPacket(pkt)
			return
		}
		dev.Send(pkt)
	default:
		n.localDrops++
		n.putPacket(pkt)
	}
}

// floodMulticast forwards a multicast packet out every port except the
// ingress one. The paper's simulated network likewise relays the
// attacker's DHCPv6 RELAY-FORW messages to every Dev. Each egress gets
// its own clone (payload deep-copied, struct pooled); the caller still
// owns the original.
func (n *Node) floodMulticast(in *NetDevice, pkt *Packet) {
	for _, d := range n.devs {
		if d == in {
			continue
		}
		d.Send(n.clonePacket(pkt))
	}
}

// deliverLocal runs the packet through the ingress filter, taps, and
// transport demux. It never frees pkt — the caller retains ownership —
// and every callee must treat the packet as borrowed for the duration
// of the call (Payload may be retained; the *Packet and TCP header may
// not).
func (n *Node) deliverLocal(pkt *Packet) {
	pkt.sanCheck("Node.deliverLocal")
	if n.filter != nil && !n.filter(pkt) {
		n.filterDrops++
		return
	}
	for _, tap := range n.taps {
		tap(n.sched.Now(), pkt)
	}
	switch pkt.Proto {
	case ProtoUDP:
		sock := n.udpPorts[pkt.Dst.Port()]
		if sock == nil {
			n.localDrops++
			return
		}
		sock.deliver(pkt)
	case ProtoTCP:
		n.tcp.deliver(pkt)
	default:
		n.localDrops++
	}
}

// String implements fmt.Stringer.
func (n *Node) String() string { return n.name }
