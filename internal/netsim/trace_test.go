package netsim

import (
	"bytes"
	"net/netip"
	"testing"

	"ddosim/internal/sim"
)

func TestCaptureRecordsDeliveredPackets(t *testing.T) {
	sched, _, star := newStar(t, 3)
	a := star.AttachHost("a", 10*Mbps, sim.Millisecond, 0)
	b := star.AttachHost("b", 10*Mbps, sim.Millisecond, 0)
	cap := StartCapture(b, 0)
	if _, err := b.BindUDP(9, nil); err != nil {
		t.Fatal(err)
	}
	sock, _ := a.BindUDP(0, nil)
	dst := netip.AddrPortFrom(b.Addr4(), 9)
	sock.SendTo(dst, []byte("one"))
	sock.SendPadded(dst, nil, 500)
	if err := sched.Run(sim.Second); err != nil {
		t.Fatal(err)
	}
	entries := cap.Entries()
	if len(entries) != 2 || cap.Total() != 2 {
		t.Fatalf("entries = %d, total = %d", len(entries), cap.Total())
	}
	if entries[0].Bytes != 3 || entries[1].Bytes != 500 {
		t.Fatalf("sizes = %d/%d", entries[0].Bytes, entries[1].Bytes)
	}
	if entries[0].Proto != ProtoUDP || entries[0].Dst != dst {
		t.Fatalf("entry = %+v", entries[0])
	}
	if got := cap.BytesBetween(0, sim.Second); got != 503 {
		t.Fatalf("BytesBetween = %d", got)
	}
	if cap.String() == "" {
		t.Fatal("empty listing")
	}
}

func TestCaptureRingBuffer(t *testing.T) {
	sched, _, star := newStar(t, 3)
	a := star.AttachHost("a", 10*Mbps, sim.Millisecond, 0)
	b := star.AttachHost("b", 100*Mbps, sim.Millisecond, 0)
	cap := StartCapture(b, 5)
	if _, err := b.BindUDP(9, nil); err != nil {
		t.Fatal(err)
	}
	sock, _ := a.BindUDP(0, nil)
	for i := 0; i < 12; i++ {
		sock.SendPadded(netip.AddrPortFrom(b.Addr4(), 9), nil, 10+i)
	}
	if err := sched.Run(sim.Minute); err != nil {
		t.Fatal(err)
	}
	if len(cap.Entries()) != 5 {
		t.Fatalf("ring kept %d entries", len(cap.Entries()))
	}
	if cap.Total() != 12 || cap.Dropped() != 7 {
		t.Fatalf("total=%d dropped=%d", cap.Total(), cap.Dropped())
	}
	// The ring holds the *last* five packets.
	if cap.Entries()[4].Bytes != 21 {
		t.Fatalf("last entry = %+v", cap.Entries()[4])
	}
}

func TestCaptureFilterProto(t *testing.T) {
	sched, client, server, _ := tcpPair(t)
	cap := StartCapture(server, 0)
	if _, err := server.ListenTCP(23, func(c *TCPConn) {}); err != nil {
		t.Fatal(err)
	}
	if _, err := server.BindUDP(9, nil); err != nil {
		t.Fatal(err)
	}
	sock, _ := client.BindUDP(0, nil)
	sock.SendTo(netip.AddrPortFrom(server.Addr4(), 9), []byte("u"))
	client.DialTCP(netip.AddrPortFrom(server.Addr4(), 23), func(c *TCPConn, err error) {
		if err == nil {
			_ = c.Send([]byte("t"))
		}
	})
	if err := sched.Run(10 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if got := cap.FilterProto(ProtoUDP); len(got) != 1 {
		t.Fatalf("udp entries = %d", len(got))
	}
	if got := cap.FilterProto(ProtoTCP); len(got) < 2 { // SYN, ACK, data
		t.Fatalf("tcp entries = %d", len(got))
	}
}

func TestFlowMonitor(t *testing.T) {
	sched, _, star := newStar(t, 3)
	ts := star.AttachHost("tserver", 100*Mbps, sim.Millisecond, 0)
	mon := InstallFlowMonitor(ts)
	if _, err := ts.BindUDP(80, nil); err != nil {
		t.Fatal(err)
	}
	dst := netip.AddrPortFrom(ts.Addr4(), 80)
	// Two sources: a heavy one and a light one.
	heavy := star.AttachHost("heavy", 10*Mbps, sim.Millisecond, 0)
	light := star.AttachHost("light", 10*Mbps, sim.Millisecond, 0)
	hs, _ := heavy.BindUDP(0, nil)
	ls, _ := light.BindUDP(0, nil)
	for i := 0; i < 10; i++ {
		hs.SendPadded(dst, nil, 1000)
	}
	ls.SendPadded(dst, nil, 50)
	if err := sched.Run(sim.Minute); err != nil {
		t.Fatal(err)
	}
	if mon.FlowCount() != 2 {
		t.Fatalf("flows = %d", mon.FlowCount())
	}
	top := mon.TopTalkers(2)
	if len(top) != 2 {
		t.Fatalf("top talkers = %d", len(top))
	}
	if top[0].Key.Src.Addr() != heavy.Addr4() {
		t.Fatalf("top talker = %v", top[0].Key)
	}
	if top[0].Stats.Bytes != 10000 || top[0].Stats.Packets != 10 {
		t.Fatalf("heavy stats = %+v", top[0].Stats)
	}
	st, ok := mon.Flow(top[1].Key)
	if !ok || st.Bytes != 50 {
		t.Fatalf("light flow = %+v ok=%v", st, ok)
	}
	if top[0].Stats.Rate() <= 0 {
		t.Fatal("zero rate for multi-packet flow")
	}
	if got := mon.TopTalkers(99); len(got) != 2 {
		t.Fatalf("TopTalkers(99) = %d", len(got))
	}
}

func TestLossRateDropsFraction(t *testing.T) {
	sched, _, star := newStar(t, 3)
	a := star.AttachHost("a", 100*Mbps, sim.Millisecond, 0)
	b := star.AttachHost("b", 100*Mbps, sim.Millisecond, 0)
	b.DefaultDevice().SetLossRate(0.3)
	got := 0
	if _, err := b.BindUDP(9, func(netip.AddrPort, []byte, int) { got++ }); err != nil {
		t.Fatal(err)
	}
	sock, _ := a.BindUDP(0, nil)
	const n = 2000
	dst := netip.AddrPortFrom(b.Addr4(), 9)
	for i := 0; i < n; i++ {
		// Paced sends so the drop-tail queue never overflows: only
		// the configured loss should drop packets.
		sched.ScheduleAt(sim.Time(i)*sim.Millisecond, func() {
			sock.SendPadded(dst, nil, 100)
		})
	}
	if err := sched.Run(sim.Minute); err != nil {
		t.Fatal(err)
	}
	frac := float64(got) / n
	if frac < 0.62 || frac > 0.78 {
		t.Fatalf("delivered fraction %v with 30%% loss", frac)
	}
	if b.DefaultDevice().Stats().LossDrops == 0 {
		t.Fatal("no loss drops recorded")
	}
	if b.DefaultDevice().LossRate() != 0.3 {
		t.Fatal("LossRate accessor")
	}
}

func TestTCPSurvivesLossyLink(t *testing.T) {
	// Go-back-N must deliver a transfer intact over a 10%-loss link.
	sched, client, server, _ := tcpPair(t)
	server.DefaultDevice().SetLossRate(0.10)
	client.DefaultDevice().SetLossRate(0.10)
	payload := bytes.Repeat([]byte("resilient"), 2000) // 18 KB
	var got bytes.Buffer
	if _, err := server.ListenTCP(80, func(c *TCPConn) {
		c.SetDataHandler(func(data []byte) { got.Write(data) })
	}); err != nil {
		t.Fatal(err)
	}
	client.DialTCP(netip.AddrPortFrom(server.Addr4(), 80), func(c *TCPConn, err error) {
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		if err := c.Send(payload); err != nil {
			t.Errorf("send: %v", err)
		}
	})
	if err := sched.Run(5 * sim.Minute); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), payload) {
		t.Fatalf("lossy transfer corrupted: %d of %d bytes", got.Len(), len(payload))
	}
}

func TestLossRateOneDropsEveryFrame(t *testing.T) {
	// p = 1.0 is a dead receive path: every frame drops, and because
	// Float64 draws from [0,1) the device still burns exactly one RNG
	// draw per frame — the sequence seen by every p < 1 consumer is
	// unchanged.
	sched, _, star := newStar(t, 3)
	a := star.AttachHost("a", 100*Mbps, sim.Millisecond, 0)
	b := star.AttachHost("b", 100*Mbps, sim.Millisecond, 0)
	b.DefaultDevice().SetLossRate(1.0)
	got := 0
	if _, err := b.BindUDP(9, func(netip.AddrPort, []byte, int) { got++ }); err != nil {
		t.Fatal(err)
	}
	sock, _ := a.BindUDP(0, nil)
	const n = 200
	dst := netip.AddrPortFrom(b.Addr4(), 9)
	for i := 0; i < n; i++ {
		sched.ScheduleAt(sim.Time(i)*sim.Millisecond, func() {
			sock.SendPadded(dst, nil, 100)
		})
	}
	if err := sched.Run(sim.Minute); err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatalf("%d frames delivered at loss 1.0", got)
	}
	if drops := b.DefaultDevice().Stats().LossDrops; drops != n {
		t.Fatalf("LossDrops = %d, want %d (one draw per frame)", drops, n)
	}
}

func TestSetLossRateValidation(t *testing.T) {
	_, _, star := newStar(t, 3)
	a := star.AttachHost("a", Mbps, 0, 0)
	// The closed interval [0,1] is legal: 1.0 models a dead receive
	// path (fault injection's worst-case loss burst).
	a.DefaultDevice().SetLossRate(1.0)
	a.DefaultDevice().SetLossRate(0)
	defer func() {
		if recover() == nil {
			t.Fatal("loss rate 1.5 accepted")
		}
	}()
	a.DefaultDevice().SetLossRate(1.5)
}

func TestCaptureRingWrapsRepeatedly(t *testing.T) {
	// The ring must stay consistent (order preserved, oldest evicted)
	// across many full wraparounds, not just the first overflow.
	sched, _, star := newStar(t, 3)
	a := star.AttachHost("a", 10*Mbps, sim.Millisecond, 0)
	b := star.AttachHost("b", 100*Mbps, sim.Millisecond, 0)
	cap := StartCapture(b, 4)
	if _, err := b.BindUDP(9, nil); err != nil {
		t.Fatal(err)
	}
	sock, _ := a.BindUDP(0, nil)
	const sent = 23
	for i := 0; i < sent; i++ {
		sock.SendPadded(netip.AddrPortFrom(b.Addr4(), 9), nil, 100+i)
	}
	if err := sched.Run(sim.Minute); err != nil {
		t.Fatal(err)
	}
	if cap.Len() != 4 {
		t.Fatalf("ring kept %d entries", cap.Len())
	}
	if cap.Total() != sent || cap.Dropped() != sent-4 {
		t.Fatalf("total=%d dropped=%d", cap.Total(), cap.Dropped())
	}
	for i, e := range cap.Entries() {
		if want := 100 + sent - 4 + i; e.Bytes != want {
			t.Fatalf("entry %d bytes = %d, want %d", i, e.Bytes, want)
		}
	}
}
