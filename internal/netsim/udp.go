package netsim

import (
	"fmt"
	"net/netip"
)

// DatagramHandler receives a delivered UDP datagram. pad reports how
// many virtual payload bytes accompanied the real ones.
type DatagramHandler func(src netip.AddrPort, payload []byte, pad int)

// UDPSocket is a bound UDP endpoint on a node. Sockets are event-driven:
// incoming datagrams invoke the handler inline; there is no blocking
// receive.
type UDPSocket struct {
	node    *Node
	port    uint16
	handler DatagramHandler
	closed  bool

	RxDatagrams uint64
	RxBytes     uint64
	TxDatagrams uint64
}

// BindUDP binds a UDP socket on port. Port 0 picks an ephemeral port.
// Binding an in-use port fails.
func (n *Node) BindUDP(port uint16, h DatagramHandler) (*UDPSocket, error) {
	if port == 0 {
		port = n.ephemeralPort()
		if port == 0 {
			return nil, fmt.Errorf("netsim: node %s: no free ephemeral UDP ports", n.name)
		}
	}
	if _, busy := n.udpPorts[port]; busy {
		return nil, fmt.Errorf("netsim: node %s: UDP port %d already bound", n.name, port)
	}
	s := &UDPSocket{node: n, port: port, handler: h}
	n.udpPorts[port] = s
	return s, nil
}

func (n *Node) ephemeralPort() uint16 {
	for p := uint16(49152); p != 0; p++ { // wraps to 0 after 65535
		if _, busy := n.udpPorts[p]; !busy {
			return p
		}
	}
	return 0
}

// Port reports the bound local port.
func (s *UDPSocket) Port() uint16 { return s.port }

// Node reports the owning node.
func (s *UDPSocket) Node() *Node { return s.node }

// Close releases the port. Further sends are dropped.
func (s *UDPSocket) Close() {
	if s.closed {
		return
	}
	s.closed = true
	delete(s.node.udpPorts, s.port)
}

// SendTo transmits payload to dst from this socket's port.
func (s *UDPSocket) SendTo(dst netip.AddrPort, payload []byte) {
	s.SendPadded(dst, payload, 0)
}

// SendPadded transmits payload plus pad virtual bytes. Flood traffic
// uses padding so that gigabytes of attack volume occupy wire time and
// queue space without being materialized in memory.
func (s *UDPSocket) SendPadded(dst netip.AddrPort, payload []byte, pad int) {
	if s.closed {
		return
	}
	src := s.localAddrFor(dst.Addr())
	pkt := s.node.getPacket()
	pkt.UID = s.node.nextUID()
	pkt.Proto = ProtoUDP
	pkt.Src = netip.AddrPortFrom(src, s.port)
	pkt.Dst = dst
	pkt.Payload = payload
	pkt.Pad = pad
	s.TxDatagrams++
	s.node.SendPacket(pkt)
}

func (s *UDPSocket) localAddrFor(dst netip.Addr) netip.Addr {
	if dst.Is6() {
		return s.node.Addr6()
	}
	return s.node.Addr4()
}

func (s *UDPSocket) deliver(pkt *Packet) {
	if s.closed {
		return
	}
	s.RxDatagrams++
	s.RxBytes += uint64(pkt.PayloadSize())
	if s.handler != nil {
		s.handler(pkt.Src, pkt.Payload, pkt.Pad)
	}
}
