package netsim

import (
	"net/netip"
	"testing"
	"testing/quick"

	"ddosim/internal/sim"
)

func newStar(t testing.TB, seed int64) (*sim.Scheduler, *Network, *Star) {
	t.Helper()
	sched := sim.NewScheduler(seed)
	w := New(sched)
	return sched, w, NewStar(w)
}

func TestDataRateTxTime(t *testing.T) {
	cases := []struct {
		rate  DataRate
		bytes int
		want  sim.Time
	}{
		{8 * BitPerSec, 1, sim.Second},
		{Kbps, 125, sim.Second},
		{Mbps, 125, sim.Millisecond},
		{100 * Mbps, 1250, 100 * sim.Microsecond},
	}
	for _, c := range cases {
		if got := c.rate.TxTime(c.bytes); got != c.want {
			t.Errorf("TxTime(%v, %d) = %v, want %v", c.rate, c.bytes, got, c.want)
		}
	}
}

func TestDataRateString(t *testing.T) {
	cases := map[DataRate]string{
		500:        "500bps",
		100 * Kbps: "100kbps",
		25 * Mbps:  "25Mbps",
		Gbps:       "1Gbps",
	}
	for r, want := range cases {
		if got := r.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int64(r), got, want)
		}
	}
}

func TestPacketSizes(t *testing.T) {
	v4 := netip.MustParseAddrPort("10.0.0.1:9")
	v6 := netip.MustParseAddrPort("[fd00::1]:9")
	udp4 := &Packet{Proto: ProtoUDP, Dst: v4, Payload: make([]byte, 100)}
	if got := udp4.Size(); got != 14+20+8+100 {
		t.Errorf("udp4 size = %d", got)
	}
	udp6 := &Packet{Proto: ProtoUDP, Dst: v6, Payload: make([]byte, 100)}
	if got := udp6.Size(); got != 14+40+8+100 {
		t.Errorf("udp6 size = %d", got)
	}
	tcp4 := &Packet{Proto: ProtoTCP, Dst: v4, Pad: 50}
	if got := tcp4.Size(); got != 14+20+20+50 {
		t.Errorf("tcp4 size = %d", got)
	}
	if got := tcp4.PayloadSize(); got != 50 {
		t.Errorf("PayloadSize = %d", got)
	}
}

func TestPacketClone(t *testing.T) {
	p := &Packet{
		Proto:   ProtoTCP,
		Payload: []byte{1, 2, 3},
		TCP:     &TCPHeader{Seq: 9},
	}
	c := p.Clone()
	c.Payload[0] = 99
	c.TCP.Seq = 100
	if p.Payload[0] != 1 || p.TCP.Seq != 9 {
		t.Fatal("Clone shares state with original")
	}
}

func TestUDPDelivery(t *testing.T) {
	sched, _, star := newStar(t, 1)
	a := star.AttachHost("a", 10*Mbps, sim.Millisecond, 0)
	b := star.AttachHost("b", 10*Mbps, sim.Millisecond, 0)

	var got []byte
	var gotSrc netip.AddrPort
	if _, err := b.BindUDP(7, func(src netip.AddrPort, payload []byte, pad int) {
		got = payload
		gotSrc = src
	}); err != nil {
		t.Fatal(err)
	}
	sock, err := a.BindUDP(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	sock.SendTo(netip.AddrPortFrom(b.Addr4(), 7), []byte("hello"))
	if err := sched.Run(sim.Second); err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello" {
		t.Fatalf("payload = %q", got)
	}
	if gotSrc.Addr() != a.Addr4() {
		t.Fatalf("src = %v, want %v", gotSrc.Addr(), a.Addr4())
	}
}

func TestUDPDeliveryIPv6(t *testing.T) {
	sched, _, star := newStar(t, 1)
	a := star.AttachHost("a", 10*Mbps, sim.Millisecond, 0)
	b := star.AttachHost("b", 10*Mbps, sim.Millisecond, 0)

	var got string
	if _, err := b.BindUDP(547, func(src netip.AddrPort, payload []byte, pad int) {
		got = string(payload)
		if !src.Addr().Is6() {
			t.Errorf("expected IPv6 source, got %v", src)
		}
	}); err != nil {
		t.Fatal(err)
	}
	sock, err := a.BindUDP(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	sock.SendTo(netip.AddrPortFrom(b.Addr6(), 547), []byte("v6"))
	if err := sched.Run(sim.Second); err != nil {
		t.Fatal(err)
	}
	if got != "v6" {
		t.Fatalf("payload = %q", got)
	}
}

func TestUDPPortConflict(t *testing.T) {
	_, _, star := newStar(t, 1)
	a := star.AttachHost("a", Mbps, sim.Millisecond, 0)
	if _, err := a.BindUDP(53, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := a.BindUDP(53, nil); err == nil {
		t.Fatal("duplicate bind succeeded")
	}
}

func TestUDPCloseReleasesPort(t *testing.T) {
	_, _, star := newStar(t, 1)
	a := star.AttachHost("a", Mbps, sim.Millisecond, 0)
	s, err := a.BindUDP(53, nil)
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if _, err := a.BindUDP(53, nil); err != nil {
		t.Fatalf("rebind after close: %v", err)
	}
}

func TestMulticastFloodsToJoinedHosts(t *testing.T) {
	sched, _, star := newStar(t, 1)
	src := star.AttachHost("src", 10*Mbps, sim.Millisecond, 0)
	group := netip.MustParseAddr("ff02::1:2")

	received := make(map[string]int)
	for _, name := range []string{"d1", "d2", "d3"} {
		h := star.AttachHost(name, 10*Mbps, sim.Millisecond, 0)
		name := name
		if name != "d3" {
			h.JoinMulticast(group)
		}
		if _, err := h.BindUDP(547, func(netip.AddrPort, []byte, int) {
			received[name]++
		}); err != nil {
			t.Fatal(err)
		}
	}
	sock, err := src.BindUDP(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	sock.SendTo(netip.AddrPortFrom(group, 547), []byte("relay-forw"))
	if err := sched.Run(sim.Second); err != nil {
		t.Fatal(err)
	}
	if received["d1"] != 1 || received["d2"] != 1 {
		t.Fatalf("joined hosts received %v", received)
	}
	if received["d3"] != 0 {
		t.Fatalf("non-member received multicast: %v", received)
	}
}

func TestMulticastNotEchoedToSender(t *testing.T) {
	sched, _, star := newStar(t, 1)
	src := star.AttachHost("src", 10*Mbps, sim.Millisecond, 0)
	group := netip.MustParseAddr("ff02::1:2")
	src.JoinMulticast(group)
	echo := 0
	if _, err := src.BindUDP(547, func(netip.AddrPort, []byte, int) { echo++ }); err != nil {
		t.Fatal(err)
	}
	sock, _ := src.BindUDP(0, nil)
	sock.SendTo(netip.AddrPortFrom(group, 547), []byte("x"))
	if err := sched.Run(sim.Second); err != nil {
		t.Fatal(err)
	}
	if echo != 0 {
		t.Fatalf("sender received its own multicast %d times", echo)
	}
}

func TestJoinMulticastRejectsUnicast(t *testing.T) {
	_, _, star := newStar(t, 1)
	h := star.AttachHost("h", Mbps, 0, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("JoinMulticast accepted a unicast address")
		}
	}()
	h.JoinMulticast(netip.MustParseAddr("10.0.0.1"))
}

func TestQueueDropTail(t *testing.T) {
	sched, _, star := newStar(t, 1)
	// Tiny queue, slow link: burst must overflow.
	a := star.AttachHost("a", 8*Kbps, sim.Millisecond, 4)
	b := star.AttachHost("b", 10*Mbps, sim.Millisecond, 0)
	got := 0
	if _, err := b.BindUDP(9, func(netip.AddrPort, []byte, int) { got++ }); err != nil {
		t.Fatal(err)
	}
	sock, _ := a.BindUDP(0, nil)
	dst := netip.AddrPortFrom(b.Addr4(), 9)
	for i := 0; i < 20; i++ {
		sock.SendPadded(dst, nil, 1000)
	}
	if err := sched.Run(time100s()); err != nil {
		t.Fatal(err)
	}
	// Queue limit 4 + 1 in flight: roughly 5 delivered, rest dropped.
	if got >= 20 || got == 0 {
		t.Fatalf("delivered %d of 20, want partial delivery (drop-tail)", got)
	}
	drops := a.DefaultDevice().Stats().QueueDrops
	if drops == 0 {
		t.Fatal("no queue drops recorded")
	}
	if int(drops)+got+a.DefaultDevice().Stats().CurrentLoad < 20-5 {
		t.Fatalf("drops=%d got=%d do not account for burst", drops, got)
	}
}

func time100s() sim.Time { return 100 * sim.Second }

func TestSerializationDelayOrdering(t *testing.T) {
	sched, _, star := newStar(t, 1)
	// 1000-byte payload at 1 Mbps: 1042 bytes on wire = ~8.3 ms per hop
	// plus two 1 ms propagation delays.
	a := star.AttachHost("a", Mbps, sim.Millisecond, 0)
	b := star.AttachHost("b", Mbps, sim.Millisecond, 0)
	var arrival sim.Time
	if _, err := b.BindUDP(9, func(netip.AddrPort, []byte, int) {
		arrival = sched.Now()
	}); err != nil {
		t.Fatal(err)
	}
	sock, _ := a.BindUDP(0, nil)
	sock.SendPadded(netip.AddrPortFrom(b.Addr4(), 9), nil, 1000)
	if err := sched.Run(sim.Second); err != nil {
		t.Fatal(err)
	}
	wire := (&Packet{Proto: ProtoUDP, Dst: netip.AddrPortFrom(b.Addr4(), 9), Pad: 1000}).Size()
	want := Mbps.TxTime(wire)*2 + 2*sim.Millisecond
	if arrival != want {
		t.Fatalf("arrival = %v, want %v", arrival, want)
	}
}

func TestDeviceDownDropsTraffic(t *testing.T) {
	sched, _, star := newStar(t, 1)
	a := star.AttachHost("a", 10*Mbps, sim.Millisecond, 0)
	b := star.AttachHost("b", 10*Mbps, sim.Millisecond, 0)
	got := 0
	if _, err := b.BindUDP(9, func(netip.AddrPort, []byte, int) { got++ }); err != nil {
		t.Fatal(err)
	}
	b.DefaultDevice().SetUp(false)
	sock, _ := a.BindUDP(0, nil)
	sock.SendTo(netip.AddrPortFrom(b.Addr4(), 9), []byte("x"))
	if err := sched.Run(sim.Second); err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatal("down device delivered traffic")
	}
	b.DefaultDevice().SetUp(true)
	sock.SendTo(netip.AddrPortFrom(b.Addr4(), 9), []byte("x"))
	if err := sched.Run(2 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("recovered device delivered %d, want 1", got)
	}
}

func TestDeviceDownFlushesQueue(t *testing.T) {
	sched, _, star := newStar(t, 1)
	a := star.AttachHost("a", Kbps, sim.Millisecond, 10)
	b := star.AttachHost("b", 10*Mbps, sim.Millisecond, 0)
	got := 0
	if _, err := b.BindUDP(9, func(netip.AddrPort, []byte, int) { got++ }); err != nil {
		t.Fatal(err)
	}
	sock, _ := a.BindUDP(0, nil)
	for i := 0; i < 5; i++ {
		sock.SendPadded(netip.AddrPortFrom(b.Addr4(), 9), nil, 500)
	}
	dev := a.DefaultDevice()
	sched.Schedule(sim.Millisecond, func() { dev.SetUp(false) })
	if err := sched.Run(time100s()); err != nil {
		t.Fatal(err)
	}
	if got > 1 {
		t.Fatalf("flushed queue still delivered %d packets", got)
	}
	if load := dev.Stats().CurrentLoad; load != 0 {
		t.Fatalf("queue not flushed: %d packets remain", load)
	}
}

func TestNetworkStatsAccounting(t *testing.T) {
	sched, w, star := newStar(t, 1)
	a := star.AttachHost("a", 10*Mbps, sim.Millisecond, 0)
	b := star.AttachHost("b", 10*Mbps, sim.Millisecond, 0)
	if _, err := b.BindUDP(9, nil); err != nil {
		t.Fatal(err)
	}
	sock, _ := a.BindUDP(0, nil)
	sock.SendTo(netip.AddrPortFrom(b.Addr4(), 9), []byte("abc"))
	if err := sched.Run(sim.Second); err != nil {
		t.Fatal(err)
	}
	st := w.Stats()
	if st.TxFrames != 2 { // host->router, router->host
		t.Fatalf("TxFrames = %d, want 2", st.TxFrames)
	}
	if st.QueuedNow != 0 {
		t.Fatalf("QueuedNow = %d after drain", st.QueuedNow)
	}
	if st.PeakQueued < 1 {
		t.Fatalf("PeakQueued = %d", st.PeakQueued)
	}
	if st.NodesBuilt != 3 {
		t.Fatalf("NodesBuilt = %d", st.NodesBuilt)
	}
}

func TestAllocAddrsUnique(t *testing.T) {
	w := New(sim.NewScheduler(1))
	seen4 := make(map[netip.Addr]bool)
	seen6 := make(map[netip.Addr]bool)
	for i := 0; i < 1000; i++ {
		v4, v6 := w.AllocAddrs()
		if seen4[v4] || seen6[v6] {
			t.Fatalf("duplicate address at iteration %d: %v %v", i, v4, v6)
		}
		if !v4.Is4() || !v6.Is6() {
			t.Fatalf("bad families: %v %v", v4, v6)
		}
		seen4[v4], seen6[v6] = true, true
	}
}

func TestPropertyAllocAddrsAlwaysValid(t *testing.T) {
	f := func(n uint16) bool {
		w := New(sim.NewScheduler(1))
		count := int(n%200) + 1
		for i := 0; i < count; i++ {
			v4, v6 := w.AllocAddrs()
			if !v4.IsValid() || !v6.IsValid() || v4.IsMulticast() || v6.IsMulticast() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicateNodeNamePanics(t *testing.T) {
	w := New(sim.NewScheduler(1))
	w.NewNode("x")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate node name accepted")
		}
	}()
	w.NewNode("x")
}

func TestSinkRecordsPerSecond(t *testing.T) {
	sched, _, star := newStar(t, 1)
	a := star.AttachHost("a", 10*Mbps, sim.Millisecond, 0)
	ts := star.AttachHost("tserver", 10*Mbps, sim.Millisecond, 0)
	sink, err := InstallSink(ts, 80)
	if err != nil {
		t.Fatal(err)
	}
	sock, _ := a.BindUDP(0, nil)
	dst := netip.AddrPortFrom(ts.Addr4(), 80)
	// One 500-byte datagram in second 0, two in second 2.
	sock.SendPadded(dst, nil, 500)
	sched.Schedule(2*sim.Second+100*sim.Millisecond, func() {
		sock.SendPadded(dst, nil, 500)
		sock.SendPadded(dst, nil, 500)
	})
	if err := sched.Run(5 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if sink.RxPackets() != 3 {
		t.Fatalf("RxPackets = %d", sink.RxPackets())
	}
	// The sink counts on-wire frame sizes (Eq. 2, "total size of the
	// packets"): 500-byte payload + 42 bytes of Ether/IPv4/UDP.
	const wire = 500 + 42
	if got := sink.Series().BytesAt(0); got != wire {
		t.Fatalf("second 0 bytes = %d, want %d", got, wire)
	}
	if got := sink.Series().BytesAt(2); got != 2*wire {
		t.Fatalf("second 2 bytes = %d, want %d", got, 2*wire)
	}
	if sink.DistinctSources() != 1 {
		t.Fatalf("DistinctSources = %d", sink.DistinctSources())
	}
	if got := sink.BytesFrom(a.Addr4()); got != 3*wire {
		t.Fatalf("BytesFrom = %d", got)
	}
	if got := sink.BytesByProto(ProtoUDP); got != 3*wire {
		t.Fatalf("BytesByProto(udp) = %d", got)
	}
}

func TestSinkAvgReceivedMatchesEq2(t *testing.T) {
	sched, _, star := newStar(t, 1)
	a := star.AttachHost("a", 10*Mbps, sim.Millisecond, 0)
	ts := star.AttachHost("tserver", 10*Mbps, sim.Millisecond, 0)
	sink, err := InstallSink(ts, 80)
	if err != nil {
		t.Fatal(err)
	}
	sock, _ := a.BindUDP(0, nil)
	dst := netip.AddrPortFrom(ts.Addr4(), 80)
	// 1250 bytes per second for 10 seconds = 10 kbps.
	for s := 0; s < 10; s++ {
		at := sim.Time(s)*sim.Second + sim.Millisecond
		sched.ScheduleAt(at, func() { sock.SendPadded(dst, nil, 1250) })
	}
	if err := sched.Run(20 * sim.Second); err != nil {
		t.Fatal(err)
	}
	got := sink.Series().AvgReceivedKbps(0, 10)
	if got < 10.0 || got > 10.5 { // +headers? payload-only: exactly 10
		t.Fatalf("D_received = %v kbps, want ~10", got)
	}
}
