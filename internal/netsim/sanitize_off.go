//go:build !simdebug

package netsim

// Release build: the pool sanitizer compiles away entirely. sanState
// is zero-sized (and placed before Packet.hdr so it costs no trailing
// padding), and every hook is an empty method the compiler inlines to
// nothing — the flood path stays allocation- and branch-free.
//
// Build with -tags simdebug to arm the sanitizer (sanitize_on.go):
// released packets are poisoned and generation-stamped, and any use,
// mutation, or double release of a stale packet panics with the
// alloc/release sites. The pktown static analyzer (internal/lint)
// catches the same bug class at compile time; the sanitizer
// cross-validates it at runtime.

type sanState struct{}

func (p *Packet) sanAlloc()       {}
func (p *Packet) sanUnpoison()    {}
func (p *Packet) sanRelease()     {}
func (p *Packet) sanPoison()      {}
func (p *Packet) sanCheck(string) {}

// SanitizerEnabled reports whether this binary carries the simdebug
// pool sanitizer.
func SanitizerEnabled() bool { return false }

// Generation reports the sanitizer's recycle count for this packet
// struct; always 0 in release builds.
func (p *Packet) Generation() uint64 { return 0 }
