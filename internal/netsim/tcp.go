package netsim

import (
	"errors"
	"fmt"
	"net/netip"

	"ddosim/internal/sim"
)

// The TCP implemented here is deliberately minimal but real: three-way
// handshake, byte-oriented sequence numbers, cumulative ACKs, a fixed
// window with go-back-N retransmission, FIN/RST teardown. It carries the
// C&C channel, the telnet admin session, and HTTP downloads; under
// churn its retransmission timeout is what detects dead bots, so losing
// precision here would distort the experiments.

// TCP tuning constants.
const (
	tcpMSS        = 1400 // max segment payload bytes
	tcpWindowSegs = 32   // fixed window, in segments
	tcpRTO        = 200 * sim.Millisecond
	tcpMaxRetries = 6
)

// Errors surfaced through close handlers and dial callbacks.
var (
	ErrConnReset   = errors.New("netsim: connection reset")
	ErrConnTimeout = errors.New("netsim: connection timed out")
	ErrConnRefused = errors.New("netsim: connection refused")
	ErrConnClosed  = errors.New("netsim: connection closed")
)

type connKey struct {
	local  netip.AddrPort
	remote netip.AddrPort
}

type tcpHost struct {
	node      *Node
	listeners map[uint16]*TCPListener
	conns     map[connKey]*TCPConn
	// localPorts refcounts conns per local endpoint so ephemeral-port
	// allocation is an O(1) lookup instead of a scan over the conn map
	// — scanning was both O(n) per dial and a map-iteration order
	// hazard on the simulation's hot path.
	localPorts map[netip.AddrPort]int
}

func newTCPHost(n *Node) *tcpHost {
	return &tcpHost{
		node:       n,
		listeners:  make(map[uint16]*TCPListener),
		conns:      make(map[connKey]*TCPConn),
		localPorts: make(map[netip.AddrPort]int),
	}
}

// addConn registers a connection in the demux table, keeping the
// local-endpoint refcount in step.
func (h *tcpHost) addConn(c *TCPConn) {
	h.conns[c.key] = c //simlint:allow allocfree(demux-table insert runs once per accepted connection, not per segment; the SYN-flood path answers with a pooled RST and never registers a conn)
	h.localPorts[c.key.local]++
}

// removeConn is the inverse of addConn; removing an unknown key is a
// no-op.
func (h *tcpHost) removeConn(c *TCPConn) {
	if _, ok := h.conns[c.key]; !ok {
		return
	}
	delete(h.conns, c.key)
	if h.localPorts[c.key.local] <= 1 {
		delete(h.localPorts, c.key.local)
	} else {
		h.localPorts[c.key.local]-- //simlint:allow allocfree(decrement of an existing key on per-connection teardown; never grows the map and never runs per segment)
	}
}

// TCPListener accepts inbound connections on a port.
type TCPListener struct {
	host   *tcpHost
	port   uint16
	accept func(*TCPConn)
	closed bool
}

// ListenTCP starts accepting TCP connections on port; accept runs once
// per connection after the handshake completes.
func (n *Node) ListenTCP(port uint16, accept func(*TCPConn)) (*TCPListener, error) {
	if port == 0 {
		return nil, fmt.Errorf("netsim: node %s: cannot listen on port 0", n.name)
	}
	if _, busy := n.tcp.listeners[port]; busy {
		return nil, fmt.Errorf("netsim: node %s: TCP port %d already listening", n.name, port)
	}
	l := &TCPListener{host: n.tcp, port: port, accept: accept}
	n.tcp.listeners[port] = l
	return l, nil
}

// Close stops accepting new connections; existing ones are unaffected.
func (l *TCPListener) Close() {
	if l.closed {
		return
	}
	l.closed = true
	delete(l.host.listeners, l.port)
}

type tcpState uint8

const (
	stateSynSent tcpState = iota + 1
	stateSynRcvd
	stateEstablished
	stateFinSent
	stateClosed
)

// DialCallback reports the outcome of a DialTCP: on success err is nil
// and c is established; on failure c is the defunct connection object.
type DialCallback func(c *TCPConn, err error)

// TCPConn is one endpoint of a simulated TCP connection.
type TCPConn struct {
	host  *tcpHost
	sched *sim.Scheduler
	key   connKey
	state tcpState

	// Send side.
	sndUna    uint32 // oldest unacknowledged sequence number
	sndNxt    uint32 // next sequence number to send
	sendBuf   []byte // bytes [sndUna, sndUna+len) not yet fully acked
	finAt     uint32 // sequence number of our FIN, valid when finQueued
	finQueued bool
	finSent   bool

	// Receive side.
	rcvNxt       uint32
	remoteFinned bool

	// Timers. rtoFn is the retransmission callback bound once on first
	// arm so that re-arming — a per-segment operation on the send path
	// — never allocates a fresh method-value closure.
	rtoEvent sim.EventID
	rtoFn    func()
	rtoArmed bool
	retries  int

	// Callbacks.
	onDial  DialCallback
	onData  func([]byte)
	onClose func(error)

	closedErr error
}

// DialTCP opens a connection to dst. The callback fires exactly once:
// with a nil error when established, or with the failure reason.
func (n *Node) DialTCP(dst netip.AddrPort, cb DialCallback) *TCPConn {
	local := n.localAddrPortFor(dst.Addr())
	c := &TCPConn{
		host:   n.tcp,
		sched:  n.sched,
		key:    connKey{local: local, remote: dst},
		state:  stateSynSent,
		onDial: cb,
	}
	iss := uint32(n.sched.RNG().Int63())
	c.sndUna, c.sndNxt, c.finAt = iss, iss+1, 0
	n.tcp.addConn(c)
	c.sendSegment(FlagSYN, iss, 0, nil)
	c.armRTO()
	return c
}

func (n *Node) localAddrPortFor(dst netip.Addr) netip.AddrPort {
	var a netip.Addr
	if dst.Is6() {
		a = n.Addr6()
	} else {
		a = n.Addr4()
	}
	for p := uint16(32768); ; p++ {
		candidate := netip.AddrPortFrom(a, p)
		if n.tcp.localPorts[candidate] == 0 {
			return candidate
		}
	}
}

// LocalAddr reports the connection's local endpoint.
func (c *TCPConn) LocalAddr() netip.AddrPort { return c.key.local }

// RemoteAddr reports the connection's remote endpoint.
func (c *TCPConn) RemoteAddr() netip.AddrPort { return c.key.remote }

// Established reports whether the connection completed its handshake
// and has not closed.
func (c *TCPConn) Established() bool { return c.state == stateEstablished }

// SetDataHandler registers the callback invoked with in-order received
// bytes.
func (c *TCPConn) SetDataHandler(h func([]byte)) { c.onData = h }

// SetCloseHandler registers the callback invoked once when the
// connection ends; err is nil for a clean remote close.
func (c *TCPConn) SetCloseHandler(h func(error)) { c.onClose = h }

// Send queues data for reliable in-order delivery.
func (c *TCPConn) Send(data []byte) error {
	if c.state != stateEstablished && c.state != stateSynRcvd && c.state != stateSynSent {
		return ErrConnClosed
	}
	if c.finQueued {
		return ErrConnClosed
	}
	c.sendBuf = append(c.sendBuf, data...)
	c.trySend()
	return nil
}

// Close performs an orderly shutdown after all buffered data is
// delivered.
func (c *TCPConn) Close() {
	if c.state == stateClosed || c.finQueued {
		return
	}
	c.finQueued = true
	c.trySend()
}

// Abort resets the connection immediately.
func (c *TCPConn) Abort() {
	if c.state == stateClosed {
		return
	}
	c.sendSegment(FlagRST, c.sndNxt, c.rcvNxt, nil)
	c.teardown(ErrConnReset)
}

func (c *TCPConn) node() *Node { return c.host.node }

func (c *TCPConn) sendSegment(flags TCPFlags, seq, ack uint32, payload []byte) {
	n := c.node()
	pkt := n.getPacket()
	pkt.UID = n.nextUID()
	pkt.Proto = ProtoTCP
	pkt.Src = c.key.local
	pkt.Dst = c.key.remote
	pkt.Payload = payload
	pkt.SetTCP(flags, seq, ack)
	n.SendPacket(pkt)
}

// trySend pushes new segments while the window allows, then the FIN.
func (c *TCPConn) trySend() {
	if c.state != stateEstablished {
		return
	}
	window := uint32(tcpWindowSegs * tcpMSS)
	for {
		inFlight := c.sndNxt - c.sndUna
		sent := int(c.sndNxt - c.sndUna) // bytes of sendBuf already sent
		if c.finSent && c.finQueued {
			sent-- // FIN consumed one sequence number
		}
		if sent < 0 {
			sent = 0
		}
		pending := len(c.sendBuf) - sent
		if pending > 0 && inFlight < window {
			n := pending
			if n > tcpMSS {
				n = tcpMSS
			}
			if uint32(n) > window-inFlight {
				n = int(window - inFlight)
			}
			seg := make([]byte, n) //simlint:allow allocfree(per-segment payload copy of the stream path; flood traffic crafts header-only segments and bypasses trySend entirely)
			copy(seg, c.sendBuf[sent:sent+n])
			c.sendSegment(FlagACK, c.sndNxt, c.rcvNxt, seg)
			c.sndNxt += uint32(n)
			c.armRTO()
			continue
		}
		if pending == 0 && c.finQueued && !c.finSent {
			c.finAt = c.sndNxt
			c.sendSegment(FlagFIN|FlagACK, c.sndNxt, c.rcvNxt, nil)
			c.sndNxt++
			c.finSent = true
			c.state = stateFinSent
			c.armRTO()
		}
		return
	}
}

func (c *TCPConn) armRTO() {
	if c.rtoArmed {
		return
	}
	if c.rtoFn == nil {
		c.rtoFn = c.onRTO //simlint:allow allocfree(RTO callback binds once per connection on first arm, then every re-arm reuses it)
	}
	c.rtoArmed = true
	backoff := sim.Time(1) << uint(c.retries)
	c.rtoEvent = c.sched.Schedule(tcpRTO*backoff, c.rtoFn)
}

func (c *TCPConn) cancelRTO() {
	if c.rtoArmed {
		c.sched.Cancel(c.rtoEvent)
		c.rtoArmed = false
	}
}

func (c *TCPConn) onRTO() {
	c.rtoArmed = false
	if c.state == stateClosed {
		return
	}
	c.retries++
	if c.retries > tcpMaxRetries {
		err := ErrConnTimeout
		if c.state == stateSynSent {
			err = ErrConnRefused
		}
		c.teardown(err)
		return
	}
	switch c.state {
	case stateSynSent:
		c.sendSegment(FlagSYN, c.sndUna, 0, nil)
	case stateSynRcvd:
		c.sendSegment(FlagSYN|FlagACK, c.sndUna, c.rcvNxt, nil)
	default:
		// Go-back-N: retransmit the oldest unacked segment.
		c.retransmitOldest()
	}
	c.armRTO()
}

func (c *TCPConn) retransmitOldest() {
	unackedData := len(c.sendBuf)
	if unackedData > 0 {
		n := unackedData
		if n > tcpMSS {
			n = tcpMSS
		}
		seg := make([]byte, n)
		copy(seg, c.sendBuf[:n])
		c.sendSegment(FlagACK, c.sndUna, c.rcvNxt, seg)
		return
	}
	if c.finSent {
		c.sendSegment(FlagFIN|FlagACK, c.finAt, c.rcvNxt, nil)
	}
}

func (c *TCPConn) teardown(err error) {
	if c.state == stateClosed {
		return
	}
	c.state = stateClosed
	c.closedErr = err
	c.cancelRTO()
	c.host.removeConn(c)
	if c.onDial != nil {
		cb := c.onDial
		c.onDial = nil
		if err != nil {
			cb(c, err)
			return
		}
	}
	if c.onClose != nil {
		c.onClose(err)
	}
}

// deliver is the host demultiplexer for inbound TCP segments.
func (h *tcpHost) deliver(pkt *Packet) {
	if pkt.TCP == nil {
		h.node.localDrops++
		return
	}
	key := connKey{local: pkt.Dst, remote: pkt.Src}
	if c, ok := h.conns[key]; ok {
		c.handleSegment(pkt)
		return
	}
	hdr := pkt.TCP
	if hdr.Flags&FlagSYN != 0 && hdr.Flags&FlagACK == 0 {
		if l, ok := h.listeners[pkt.Dst.Port()]; ok && !l.closed {
			h.acceptSyn(l, pkt)
			return
		}
	}
	if hdr.Flags&FlagRST == 0 {
		// No socket: refuse.
		h.sendRST(pkt)
	}
}

func (h *tcpHost) sendRST(in *Packet) {
	pkt := h.node.getPacket()
	pkt.UID = h.node.nextUID()
	pkt.Proto = ProtoTCP
	pkt.Src = in.Dst
	pkt.Dst = in.Src
	pkt.SetTCP(FlagRST, in.TCP.Ack, in.TCP.Seq+1)
	h.node.SendPacket(pkt)
}

func (h *tcpHost) acceptSyn(l *TCPListener, pkt *Packet) {
	//simlint:allow allocfree(connection setup allocates once per accepted conn behind a listener; orphan SYNs — the flood case — take the pooled sendRST path instead)
	c := &TCPConn{
		host:  h,
		sched: h.node.sched,
		key:   connKey{local: pkt.Dst, remote: pkt.Src},
		state: stateSynRcvd,
	}
	iss := uint32(h.node.sched.RNG().Int63())
	c.sndUna, c.sndNxt = iss, iss+1
	c.rcvNxt = pkt.TCP.Seq + 1
	h.addConn(c)
	//simlint:allow allocfree(accept callback is bound once per accepted connection during setup, not on the per-segment path)
	c.onDial = func(conn *TCPConn, err error) {
		if err == nil {
			l.accept(conn)
		}
	}
	c.sendSegment(FlagSYN|FlagACK, iss, c.rcvNxt, nil)
	c.armRTO()
}

func (c *TCPConn) handleSegment(pkt *Packet) {
	hdr := pkt.TCP
	if hdr.Flags&FlagRST != 0 {
		c.teardown(ErrConnReset)
		return
	}
	switch c.state {
	case stateSynSent:
		if hdr.Flags&(FlagSYN|FlagACK) == FlagSYN|FlagACK && hdr.Ack == c.sndNxt {
			c.sndUna = hdr.Ack
			c.rcvNxt = hdr.Seq + 1
			c.state = stateEstablished
			c.cancelRTO()
			c.retries = 0
			c.sendSegment(FlagACK, c.sndNxt, c.rcvNxt, nil)
			if c.onDial != nil {
				cb := c.onDial
				c.onDial = nil
				cb(c, nil)
			}
			c.trySend()
		}
		return
	case stateSynRcvd:
		if hdr.Flags&FlagACK != 0 && hdr.Ack == c.sndNxt {
			// The ACK covers our SYN's sequence slot; consume it
			// before the accept callback queues data, or the slot
			// would be charged against the first payload byte.
			c.sndUna = hdr.Ack
			c.state = stateEstablished
			c.cancelRTO()
			c.retries = 0
			if c.onDial != nil {
				cb := c.onDial
				c.onDial = nil
				cb(c, nil)
			}
			// Fall through to normal processing for piggybacked data.
		} else {
			return
		}
	case stateClosed:
		return
	}

	// ACK processing.
	if hdr.Flags&FlagACK != 0 && seqLEq(hdr.Ack, c.sndNxt) && seqLT(c.sndUna, hdr.Ack) {
		acked := hdr.Ack - c.sndUna
		dataAcked := acked
		if c.finSent && seqLT(c.finAt, hdr.Ack) {
			dataAcked-- // FIN's sequence slot carries no data
		}
		if int(dataAcked) <= len(c.sendBuf) {
			c.sendBuf = c.sendBuf[dataAcked:]
		} else {
			c.sendBuf = nil
		}
		c.sndUna = hdr.Ack
		c.retries = 0
		c.cancelRTO()
		if c.sndUna != c.sndNxt {
			c.armRTO()
		}
		if c.finSent && c.sndUna == c.sndNxt && c.state == stateFinSent {
			// Our FIN is acknowledged; if the peer's FIN was already
			// processed we are fully closed.
			if c.closedErr == nil && c.remoteFinned {
				c.teardown(nil)
				return
			}
		}
		c.trySend()
	}

	// In-order data processing.
	if len(pkt.Payload) > 0 {
		if hdr.Seq == c.rcvNxt {
			c.rcvNxt += uint32(len(pkt.Payload))
			if c.onData != nil {
				c.onData(pkt.Payload)
			}
		}
		// ACK whatever we have (cumulative; duplicates tell the sender
		// where we are).
		if c.state != stateClosed {
			c.sendSegment(FlagACK, c.sndNxt, c.rcvNxt, nil)
		}
	}

	// FIN processing.
	if hdr.Flags&FlagFIN != 0 && c.state != stateClosed {
		finSeq := hdr.Seq + uint32(len(pkt.Payload))
		if finSeq == c.rcvNxt {
			c.rcvNxt++
			c.remoteFinned = true
			c.sendSegment(FlagACK, c.sndNxt, c.rcvNxt, nil)
			if !c.finSent {
				// Passive close: push our own FIN once our data drains.
				c.Close()
			}
			if c.finSent && c.sndUna == c.sndNxt {
				c.teardown(nil)
			}
		} else if seqLT(finSeq, c.rcvNxt) {
			// Retransmitted FIN we already consumed: re-ACK it.
			c.sendSegment(FlagACK, c.sndNxt, c.rcvNxt, nil)
		}
	}
}

// seqLT reports a < b in 32-bit sequence space.
func seqLT(a, b uint32) bool { return int32(a-b) < 0 }

// seqLEq reports a <= b in 32-bit sequence space.
func seqLEq(a, b uint32) bool { return int32(a-b) <= 0 }
