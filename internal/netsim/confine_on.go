//go:build simdebug

package netsim

// simdebug build: the runtime half of the shard-confinement tooling,
// cross-validating the shardconfine/crossnode static analyzers in
// internal/lint the same way the pool sanitizer (sanitize_on.go)
// cross-validates pktown.
//
// The scheduler loop is single-threaded, so "which partition is
// executing" is a single ambient fact: while a node's IP input path
// (handleReceive) or loopback delivery runs, that node owns the
// handler. Every administrative mutator of Node and NetDevice state
// checks the ambient owner — mutating a *different* node's tracked
// state from inside a delivery is exactly the access that becomes a
// data race once the kernel shards, and it panics here with both node
// names and the call site.
//
// Control-plane code (faults, churn, core supervisors) runs outside
// any delivery, with no ambient owner, and is not checked at runtime
// — the static analyzers inventory those sites instead (see
// results/simlint_inventory.json).

import (
	"fmt"
	"runtime"
	"strings"
)

// confOwner is the node whose handler is currently executing, or nil
// outside packet delivery. Single-threaded by the kernel's design; a
// plain variable suffices.
var confOwner *Node

// confineEnter stamps n as the executing partition, returning the
// previous owner for nested deliveries (forwarding, loopback).
func confineEnter(n *Node) *Node {
	prev := confOwner
	confOwner = n
	return prev
}

// confineExit restores the previous ambient owner.
func confineExit(prev *Node) { confOwner = prev }

// confSite reports the first caller frame outside the confinement
// machinery and the netsim mutators — the application-level line that
// performed the foreign mutation.
func confSite() string {
	pcs := make([]uintptr, 24)
	n := runtime.Callers(2, pcs)
	frames := runtime.CallersFrames(pcs[:n])
	last := "unknown"
	for {
		f, more := frames.Next()
		last = fmt.Sprintf("%s:%d", f.File, f.Line)
		if !strings.HasSuffix(f.File, "/confine_on.go") &&
			!strings.HasSuffix(f.File, "/node.go") &&
			!strings.HasSuffix(f.File, "/device.go") &&
			!strings.HasSuffix(f.File, "/udp.go") {
			return last
		}
		if !more {
			return last
		}
	}
}

// confineCheck panics when a handler owned by one node mutates the
// tracked state of another: the cross-partition write the sharded
// kernel cannot allow outside the message path.
func (n *Node) confineCheck(op string) {
	if confOwner != nil && n != nil && confOwner != n {
		panic(fmt.Sprintf(
			"netsim: shard-confinement violation: %s on foreign node %q inside a handler owned by node %q at %s",
			op, n.name, confOwner.name, confSite()))
	}
}

// confineCheck on a device delegates to its owning node.
func (d *NetDevice) confineCheck(op string) {
	if d != nil && d.node != nil {
		d.node.confineCheck(op)
	}
}

// ConfinementEnabled reports whether this binary carries the simdebug
// confinement sanitizer.
func ConfinementEnabled() bool { return true }
