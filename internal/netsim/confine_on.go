//go:build simdebug

package netsim

// simdebug build: the runtime half of the shard-confinement tooling,
// cross-validating the shardconfine/crossnode static analyzers in
// internal/lint the same way the pool sanitizer (sanitize_on.go)
// cross-validates pktown.
//
// "Which partition is executing" is a per-shard ambient fact: while a
// node's IP input path (handleReceive) or loopback delivery runs, that
// node owns its shard's handler slot. Every administrative mutator of
// Node and NetDevice state checks the target node's cell — mutating a
// *different* node's tracked state from inside a delivery is exactly
// the access that is a data race under the sharded kernel, and it
// panics here with both node names, both shard ids, and the call site.
//
// The owner slot lives in a confCell: one per shard context in sharded
// mode (so each worker goroutine reads and writes only its own cell —
// the sanitizer itself must not race), one on the Network in legacy
// mode. A same-shard foreign mutation is caught deterministically; a
// cross-shard one reads the victim shard's cell, which the race
// detector (-race CI job) then flags on top of any panic here.
// Control-plane code (churn, faults, supervisors) runs at epoch
// barriers with the world stopped: every cell's owner is nil there, so
// its cross-partition writes are sanctioned, replacing the
// //simlint:allow inventory the analyzers used to carry.

import (
	"fmt"
	"runtime"
	"strings"
)

// confCell is one partition's ambient-owner slot: the node whose
// handler is currently executing on that partition, or nil outside
// packet delivery.
type confCell struct{ owner *Node }

// confCellOf returns the cell guarding n's state.
func confCellOf(n *Node) *confCell {
	if n.ctx != nil {
		return &n.ctx.conf
	}
	return &n.net.conf
}

// confineEnter stamps n as the executing partition on its own shard,
// returning the previous owner for nested deliveries (forwarding,
// loopback).
func confineEnter(n *Node) *Node {
	cell := confCellOf(n)
	prev := cell.owner
	cell.owner = n
	return prev
}

// confineExit restores the previous ambient owner of n's shard.
func confineExit(n *Node, prev *Node) { confCellOf(n).owner = prev }

// confSite reports the first caller frame outside the confinement
// machinery and the netsim mutators — the application-level line that
// performed the foreign mutation.
func confSite() string {
	pcs := make([]uintptr, 24)
	n := runtime.Callers(2, pcs)
	frames := runtime.CallersFrames(pcs[:n])
	last := "unknown"
	for {
		f, more := frames.Next()
		last = fmt.Sprintf("%s:%d", f.File, f.Line)
		if !strings.HasSuffix(f.File, "/confine_on.go") &&
			!strings.HasSuffix(f.File, "/node.go") &&
			!strings.HasSuffix(f.File, "/device.go") &&
			!strings.HasSuffix(f.File, "/udp.go") {
			return last
		}
		if !more {
			return last
		}
	}
}

// confShard renders a node's shard for the violation message.
func confShard(n *Node) string {
	if n.shardID < 0 {
		return "unsharded"
	}
	return fmt.Sprintf("shard %d", n.shardID)
}

// confineCheck panics when a handler owned by one node mutates the
// tracked state of another: the cross-partition write the sharded
// kernel cannot allow outside the message path.
func (n *Node) confineCheck(op string) {
	if n == nil {
		return
	}
	cell := confCellOf(n)
	if cell.owner != nil && cell.owner != n {
		panic(fmt.Sprintf(
			"netsim: shard-confinement violation: %s on foreign node %q (%s) inside a handler owned by node %q (%s) at %s",
			op, n.name, confShard(n), cell.owner.name, confShard(cell.owner), confSite()))
	}
}

// confineCheck on a device delegates to its owning node.
func (d *NetDevice) confineCheck(op string) {
	if d != nil && d.node != nil {
		d.node.confineCheck(op)
	}
}

// ConfinementEnabled reports whether this binary carries the simdebug
// confinement sanitizer.
func ConfinementEnabled() bool { return true }
