//go:build !simdebug

package netsim

// Release build: the shard-confinement sanitizer compiles away. The
// enter/exit stamps and every mutator's confineCheck are empty
// functions the compiler inlines to nothing, so the delivery hot path
// keeps its release-build shape, and the per-partition owner cell is a
// zero-size field.
//
// Build with -tags simdebug to arm the sanitizer (confine_on.go):
// packet deliveries stamp their owning node on their shard's cell, and
// any Node/NetDevice administrative mutation against a different node
// panics with both node names, both shard ids, and the mutation site.
// The shardconfine/crossnode static analyzers (internal/lint) catch
// the same access class at compile time; the sanitizer cross-validates
// it at runtime.

// confCell is the per-partition ambient-owner slot; empty here.
type confCell struct{}

func confineEnter(*Node) *Node { return nil }

func confineExit(*Node, *Node) {}

func (n *Node) confineCheck(string) {}

func (d *NetDevice) confineCheck(string) {}

// ConfinementEnabled reports whether this binary carries the simdebug
// confinement sanitizer.
func ConfinementEnabled() bool { return false }
