package netsim

import (
	"fmt"
	"net/netip"

	"ddosim/internal/obs"
	"ddosim/internal/sim"
)

// NetworkStats aggregates network-wide counters that feed the Table I
// resource model: total frames transmitted, total bytes on the wire,
// queue drops, and the peak number of frames buffered anywhere in the
// network at one instant.
type NetworkStats struct {
	TxFrames    uint64
	TxBytes     uint64
	Drops       uint64
	QueuedNow   int
	PeakQueued  int
	NodesBuilt  int
	PacketUIDs  uint64
	MaxFrameLen int
}

// Network owns a set of nodes and a shared scheduler, allocates
// addresses, and tracks aggregate statistics. Its topology helpers
// build the star network of §III-D: every DDoSim component hangs off a
// central router via a point-to-point Ethernet-like link.
type Network struct {
	sched  *sim.Scheduler
	nodes  []*Node
	byName map[string]*Node

	next4 uint32 // low 24 bits of next 10.x.y.z host address
	next6 uint64 // interface id of next fd00::/64 host address

	stats NetworkStats

	// Packet free list (see pool.go).
	pp pktPool

	// Flow accounting (optional; see EnableFlows).
	flows       *FlowTable
	flowSweeper *sim.Ticker // sharded mode: the single control-plane sweeper

	// Sharded-mode bindings (see shard.go). conf is the legacy-mode
	// confinement cell; sharded nodes use their shard context's.
	set    *sim.ShardSet
	ctxs   []*netShard
	nextLP *sim.LP
	conf   confCell

	// Observability (optional; see Observe). The counters are cached
	// here so the per-frame hot path skips the registry map lookups.
	trace        *obs.Tracer
	ctrTxFrames  *obs.Counter
	ctrTxBytes   *obs.Counter
	ctrTxByProto [ProtoTCP + 1]*obs.Counter
	ctrDrops     *obs.Counter
	gaugeQueued  *obs.Gauge
	gaugePeak    *obs.Gauge
}

// New creates an empty network driven by sched.
func New(sched *sim.Scheduler) *Network {
	return &Network{
		sched:  sched,
		byName: make(map[string]*Node),
		next4:  1,
		next6:  1,
	}
}

// Sched exposes the network's scheduler.
func (w *Network) Sched() *sim.Scheduler { return w.sched }

// Observe attaches the observability bundle: queue drops become trace
// events, and the wire-level counters (frames, bytes per flow class,
// drops, queue depth) are mirrored into the metrics registry. Safe to
// call with nil to detach.
func (w *Network) Observe(o *obs.Obs) {
	w.trace = o.Tracer()
	if w.set != nil && w.trace != nil {
		w.initShardTracers()
	}
	reg := o.Registry()
	if reg == nil {
		w.ctrTxFrames, w.ctrTxBytes, w.ctrDrops = nil, nil, nil
		w.gaugeQueued, w.gaugePeak = nil, nil
		for i := range w.ctrTxByProto {
			w.ctrTxByProto[i] = nil
		}
		return
	}
	w.ctrTxFrames = reg.Counter("net_tx_frames_total", "frames transmitted on any link")
	w.ctrTxBytes = reg.Counter("net_tx_bytes_total", "bytes transmitted on any link")
	w.ctrTxByProto[ProtoUDP] = reg.Counter("net_tx_bytes_udp_total", "bytes transmitted in UDP frames")
	w.ctrTxByProto[ProtoTCP] = reg.Counter("net_tx_bytes_tcp_total", "bytes transmitted in TCP frames")
	w.ctrDrops = reg.Counter("net_queue_drops_total", "frames dropped at any queue (drop-tail or loss)")
	w.gaugeQueued = reg.Gauge("net_queue_depth", "frames buffered anywhere in the network right now")
	w.gaugePeak = reg.Gauge("net_queue_depth_peak", "peak frames buffered anywhere in the network")
}

// Stats returns a copy of the aggregate counters. Sharded mode sums
// the per-shard partial aggregates; safe at barriers and after the
// run. Two fields change meaning there, in partition-independent ways:
// PacketUIDs counts per-node id issuance, and PeakQueued is the sum of
// per-device queue high-water marks (an upper bound on the legacy
// global-instant peak, which cannot be tracked without cross-shard
// coordination on the hot path).
func (w *Network) Stats() NetworkStats {
	if w.set == nil {
		return w.stats
	}
	st := w.stats // NodesBuilt and other build-time counters
	for _, c := range w.ctxs {
		st.TxFrames += c.stats.TxFrames
		st.TxBytes += c.stats.TxBytes
		st.Drops += c.stats.Drops
		st.QueuedNow += c.stats.QueuedNow
		if c.stats.MaxFrameLen > st.MaxFrameLen {
			st.MaxFrameLen = c.stats.MaxFrameLen
		}
	}
	for _, n := range w.nodes {
		st.PacketUIDs += n.uidSeq
		for _, d := range n.devs {
			st.PeakQueued += d.stats.PeakQueue
		}
	}
	return st
}

// Nodes returns the nodes in creation order. The returned slice is a
// copy.
func (w *Network) Nodes() []*Node {
	out := make([]*Node, len(w.nodes))
	copy(out, w.nodes)
	return out
}

// Node returns the node with the given name, or nil.
func (w *Network) Node(name string) *Node { return w.byName[name] }

// NewNode creates a bare node with no devices or addresses.
func (w *Network) NewNode(name string) *Node {
	if _, dup := w.byName[name]; dup {
		panic(fmt.Sprintf("netsim: duplicate node name %q", name))
	}
	n := &Node{
		name:      name,
		net:       w,
		sched:     w.sched,
		shardID:   -1,
		idx:       len(w.nodes),
		addrs:     make(map[netip.Addr]bool),
		routes:    make(map[netip.Addr]*NetDevice),
		multicast: make(map[netip.Addr]bool),
		udpPorts:  make(map[uint16]*UDPSocket),
	}
	if w.set != nil {
		w.bindShard(n)
	}
	n.tcp = newTCPHost(n)
	w.nodes = append(w.nodes, n)
	w.byName[name] = n
	w.stats.NodesBuilt++
	return n
}

// AllocAddrs returns a fresh (IPv4, IPv6) address pair from the
// network's 10.0.0.0/8 and fd00::/64 pools.
func (w *Network) AllocAddrs() (netip.Addr, netip.Addr) {
	v4 := netip.AddrFrom4([4]byte{10, byte(w.next4 >> 16), byte(w.next4 >> 8), byte(w.next4)})
	w.next4++
	var b [16]byte
	b[0] = 0xfd
	for i := 0; i < 8; i++ {
		b[15-i] = byte(w.next6 >> (8 * i))
	}
	v6 := netip.AddrFrom16(b)
	w.next6++
	return v4, v6
}

// Star is a router-centric topology: hosts attach to Router with
// per-host links, and the router carries host routes for every leaf.
type Star struct {
	Net    *Network
	Router *Node
}

// NewStar builds the empty star with its central router.
func NewStar(w *Network) *Star {
	r := w.NewNode("router")
	r.SetForwarding(true)
	return &Star{Net: w, Router: r}
}

// AttachHost creates a named host, links it to the router at the given
// rate/delay/queue depth, assigns it one IPv4 and one IPv6 address, and
// installs routes both ways. It returns the host node.
func (s *Star) AttachHost(name string, rate DataRate, delay sim.Time, queueLimit int) *Node {
	h := s.Net.NewNode(name)
	hostDev, routerDev := Connect(h, s.Router, rate, delay, queueLimit)
	h.SetDefaultDevice(hostDev)
	v4, v6 := s.Net.AllocAddrs()
	h.AddAddr(v4)
	h.AddAddr(v6)
	s.Router.AddRoute(v4, routerDev)
	s.Router.AddRoute(v6, routerDev)
	return h
}

// AttachHostAsym is AttachHost with distinct uplink (host→router) and
// downlink (router→host) rates. TServer uses this: a modest uplink but
// a downlink wide enough to observe the flood.
func (s *Star) AttachHostAsym(name string, up, down DataRate, delay sim.Time, queueLimit int) *Node {
	h := s.Net.NewNode(name)
	hostDev, routerDev := ConnectAsym(h, s.Router, up, down, delay, queueLimit)
	h.SetDefaultDevice(hostDev)
	v4, v6 := s.Net.AllocAddrs()
	h.AddAddr(v4)
	h.AddAddr(v6)
	s.Router.AddRoute(v4, routerDev)
	s.Router.AddRoute(v6, routerDev)
	return h
}

// RouterDeviceFor returns the router-side device of the link leading to
// host, or nil when the host is not directly attached.
func (s *Star) RouterDeviceFor(host *Node) *NetDevice {
	for _, d := range host.devs {
		if d.peer != nil && d.peer.node == s.Router {
			return d.peer
		}
	}
	return nil
}

// NextUID issues a unique packet id from the network-wide counter —
// legacy mode only; sharded nodes issue from their own namespace
// (Node.NextUID) so id assignment never depends on cross-shard
// interleaving.
func (w *Network) NextUID() uint64 {
	if w.set != nil {
		panic("netsim: Network.NextUID in sharded mode; issue from a Node")
	}
	w.stats.PacketUIDs++
	return w.stats.PacketUIDs
}
