// Package dhcpv6 implements the subset of the DHCPv6 wire format
// (RFC 8415) DDoSim needs: RELAY-FORW messages with options, sent to
// the All-DHCP-Relay-Agents-and-Servers multicast group. The attacker
// crafts a RELAY-FORW whose Relay Message option carries the ROP
// payload, exploiting Dnsmasq's CVE-2017-14493 on every listening Dev.
package dhcpv6

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
)

// Message types.
const (
	TypeSolicit   uint8 = 1
	TypeAdvertise uint8 = 2
	TypeRequest   uint8 = 3
	TypeReply     uint8 = 7
	TypeRelayForw uint8 = 12
	TypeRelayRepl uint8 = 13
)

// Option codes.
const (
	OptClientID uint16 = 1
	OptServerID uint16 = 2
	OptRelayMsg uint16 = 9
)

// ServerPort is the UDP port DHCPv6 servers and relay agents listen
// on; Dnsmasq binds it.
const ServerPort = 547

// AllRelayAgentsAndServers is the ff02::1:2 multicast group. The paper
// sends the exploit there because IPv6 has no broadcast address.
var AllRelayAgentsAndServers = netip.MustParseAddr("ff02::1:2")

// Errors returned by decoding.
var (
	ErrTruncated = errors.New("dhcpv6: truncated message")
	ErrNotRelay  = errors.New("dhcpv6: not a relay message")
)

// Option is a single DHCPv6 option TLV.
type Option struct {
	Code uint16
	Data []byte
}

// RelayForw is a RELAY-FORW message.
type RelayForw struct {
	HopCount uint8
	LinkAddr netip.Addr
	PeerAddr netip.Addr
	Options  []Option
}

// NewRelayForw builds a relay-forward with the given relay-message
// payload — the shape of the paper's crafted exploit datagram.
func NewRelayForw(link, peer netip.Addr, relayMsg []byte) *RelayForw {
	return &RelayForw{
		LinkAddr: link,
		PeerAddr: peer,
		Options:  []Option{{Code: OptRelayMsg, Data: relayMsg}},
	}
}

// Option returns the first option with the given code.
func (r *RelayForw) Option(code uint16) ([]byte, bool) {
	for _, o := range r.Options {
		if o.Code == code {
			return o.Data, true
		}
	}
	return nil, false
}

// Encode renders the message in wire format:
// msg-type(1) hop-count(1) link-address(16) peer-address(16) options.
func (r *RelayForw) Encode() []byte {
	b := make([]byte, 0, 34)
	b = append(b, TypeRelayForw, r.HopCount)
	b = append(b, addr16(r.LinkAddr)...)
	b = append(b, addr16(r.PeerAddr)...)
	for _, o := range r.Options {
		b = binary.BigEndian.AppendUint16(b, o.Code)
		b = binary.BigEndian.AppendUint16(b, uint16(len(o.Data)))
		b = append(b, o.Data...)
	}
	return b
}

func addr16(a netip.Addr) []byte {
	if !a.IsValid() {
		return make([]byte, 16)
	}
	b := a.As16()
	return b[:]
}

// DecodeRelayForw parses a wire-format RELAY-FORW message.
func DecodeRelayForw(b []byte) (*RelayForw, error) {
	if len(b) < 1 {
		return nil, ErrTruncated
	}
	if b[0] != TypeRelayForw {
		return nil, ErrNotRelay
	}
	if len(b) < 34 {
		return nil, ErrTruncated
	}
	r := &RelayForw{
		HopCount: b[1],
		LinkAddr: netip.AddrFrom16([16]byte(b[2:18])),
		PeerAddr: netip.AddrFrom16([16]byte(b[18:34])),
	}
	off := 34
	for off < len(b) {
		if off+4 > len(b) {
			return nil, ErrTruncated
		}
		code := binary.BigEndian.Uint16(b[off : off+2])
		length := int(binary.BigEndian.Uint16(b[off+2 : off+4]))
		off += 4
		if off+length > len(b) {
			return nil, ErrTruncated
		}
		r.Options = append(r.Options, Option{
			Code: code,
			Data: append([]byte(nil), b[off:off+length]...),
		})
		off += length
	}
	return r, nil
}

// String summarizes the message for traces.
func (r *RelayForw) String() string {
	return fmt.Sprintf("dhcpv6 relay-forw hops=%d peer=%s opts=%d", r.HopCount, r.PeerAddr, len(r.Options))
}
