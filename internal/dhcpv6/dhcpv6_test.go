package dhcpv6

import (
	"bytes"
	"net/netip"
	"testing"
	"testing/quick"
)

func TestRelayForwRoundTrip(t *testing.T) {
	link := netip.MustParseAddr("fd00::1")
	peer := netip.MustParseAddr("fe80::2")
	payload := []byte{0x01, 0x00, 0xff, 0x41, 0x41}
	r := NewRelayForw(link, peer, payload)
	r.HopCount = 3

	got, err := DecodeRelayForw(r.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.HopCount != 3 {
		t.Fatalf("hops = %d", got.HopCount)
	}
	if got.LinkAddr != link || got.PeerAddr != peer {
		t.Fatalf("addrs = %v %v", got.LinkAddr, got.PeerAddr)
	}
	data, ok := got.Option(OptRelayMsg)
	if !ok || !bytes.Equal(data, payload) {
		t.Fatalf("relay-msg = %x ok=%v", data, ok)
	}
}

func TestMultipleOptions(t *testing.T) {
	r := NewRelayForw(netip.MustParseAddr("::"), netip.MustParseAddr("::1"), []byte("msg"))
	r.Options = append(r.Options, Option{Code: OptClientID, Data: []byte("duid")})
	got, err := DecodeRelayForw(r.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Options) != 2 {
		t.Fatalf("options = %d", len(got.Options))
	}
	duid, ok := got.Option(OptClientID)
	if !ok || string(duid) != "duid" {
		t.Fatalf("client-id = %q", duid)
	}
	if _, ok := got.Option(OptServerID); ok {
		t.Fatal("found absent option")
	}
}

func TestDecodeRejectsNonRelay(t *testing.T) {
	b := []byte{TypeSolicit, 0, 0, 0}
	if _, err := DecodeRelayForw(b); err != ErrNotRelay {
		t.Fatalf("err = %v, want ErrNotRelay", err)
	}
}

func TestDecodeTruncated(t *testing.T) {
	wire := NewRelayForw(netip.MustParseAddr("::"), netip.MustParseAddr("::1"), []byte("abcdef")).Encode()
	for n := 1; n < len(wire); n++ {
		if n == 34 {
			// Exactly the fixed header: a valid option-less message.
			continue
		}
		if _, err := DecodeRelayForw(wire[:n]); err == nil {
			t.Fatalf("accepted %d/%d bytes", n, len(wire))
		}
	}
	if _, err := DecodeRelayForw(nil); err == nil {
		t.Fatal("accepted empty message")
	}
}

func TestInvalidAddrEncodesAsZeros(t *testing.T) {
	r := &RelayForw{Options: []Option{{Code: OptRelayMsg, Data: []byte("x")}}}
	got, err := DecodeRelayForw(r.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.LinkAddr != netip.IPv6Unspecified() {
		t.Fatalf("zero link addr decoded as %v", got.LinkAddr)
	}
}

func TestMulticastGroupConstant(t *testing.T) {
	if !AllRelayAgentsAndServers.IsMulticast() {
		t.Fatal("ff02::1:2 not recognized as multicast")
	}
	if ServerPort != 547 {
		t.Fatalf("ServerPort = %d", ServerPort)
	}
}

func TestStringer(t *testing.T) {
	r := NewRelayForw(netip.MustParseAddr("::"), netip.MustParseAddr("fe80::9"), nil)
	if r.String() == "" {
		t.Fatal("empty String")
	}
}

// Property: arbitrary relay-message payloads round-trip byte-exact —
// the exploit payload must not be altered in transit.
func TestPropertyPayloadRoundTrip(t *testing.T) {
	f := func(payload []byte, hops uint8) bool {
		if len(payload) > 60000 {
			payload = payload[:60000]
		}
		r := NewRelayForw(netip.MustParseAddr("fd00::1"), netip.MustParseAddr("fe80::2"), payload)
		r.HopCount = hops
		got, err := DecodeRelayForw(r.Encode())
		if err != nil {
			return false
		}
		data, ok := got.Option(OptRelayMsg)
		return ok && bytes.Equal(data, payload) && got.HopCount == hops
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: DecodeRelayForw never panics on arbitrary bytes.
func TestPropertyDecodeRobust(t *testing.T) {
	f := func(b []byte) bool {
		defer func() {
			if recover() != nil {
				t.Fatal("DecodeRelayForw panicked")
			}
		}()
		_, _ = DecodeRelayForw(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
