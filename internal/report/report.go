// Package report serializes run results into machine-readable
// artifacts: a JSON document (configuration echo, headline metrics,
// full timeline) and CSV exports of the per-second rate series and the
// event log — the raw material for the figure-plotting and
// ML-dataset-generation workflows the paper envisions (§V-A).
package report

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"ddosim/internal/core"
	"ddosim/internal/faults"
	"ddosim/internal/metrics"
	"ddosim/internal/obs"
	"ddosim/internal/sim"
)

// Event is a timeline entry in serializable form.
type Event struct {
	AtSecs float64 `json:"at_s"`
	Kind   string  `json:"kind"`
	Actor  string  `json:"actor"`
}

// Run is the serializable view of one simulation run.
type Run struct {
	// Configuration echo.
	Devs           int    `json:"devs"`
	ChurnMode      string `json:"churn"`
	Vector         string `json:"vector"`
	AttackMethod   string `json:"attack_method"`
	AttackDuration int    `json:"attack_duration_s"`
	Seed           int64  `json:"seed"`

	// Headline metrics.
	ExploitAttempts int     `json:"exploit_attempts"`
	Hijacked        int     `json:"hijacked"`
	Infected        int     `json:"infected"`
	Crashed         int     `json:"crashed"`
	InfectionRate   float64 `json:"infection_rate"`
	BotsRegistered  int     `json:"bots_registered"`
	BotsAtCommand   int     `json:"bots_at_command"`
	AttackIssuedAtS float64 `json:"attack_issued_at_s"`
	DReceivedKbps   float64 `json:"d_received_kbps"`
	SinkBytes       uint64  `json:"sink_bytes"`
	DistinctSources int     `json:"distinct_sources"`
	ChurnDepartures uint64  `json:"churn_departures"`
	ChurnRejoins    uint64  `json:"churn_rejoins"`
	WeakCredDevs    int     `json:"weak_cred_devs,omitempty"`
	CanaryDevs      int     `json:"canary_devs,omitempty"`

	// Table I estimates.
	PreAttackMemGB float64 `json:"pre_attack_mem_gb"`
	AttackMemGB    float64 `json:"attack_mem_gb"`
	AttackTimeSecs float64 `json:"attack_time_s"`

	// Faults counts injected faults; omitted for fault-free runs so
	// their reports stay byte-identical to builds without the
	// subsystem.
	Faults *faults.Stats `json:"faults,omitempty"`

	// Series and events.
	PerSecondKbps []float64 `json:"per_second_kbps,omitempty"`
	Timeline      []Event   `json:"timeline,omitempty"`

	// Obs condenses the run's observability layer: trace volume,
	// scheduler load by source, and the wall-clock profile.
	Obs obs.Summary `json:"obs"`

	// Flows aggregates the exported flow records by ground-truth label;
	// Phases summarizes kill-chain (and fault) span latencies.
	Flows  obs.FlowStats   `json:"flows"`
	Phases []obs.PhaseStat `json:"phases,omitempty"`
}

// FromResults builds the serializable view. includeDetail controls
// whether the per-second series and the timeline are embedded.
func FromResults(cfg core.Config, r *core.Results, includeDetail bool) Run {
	run := Run{
		Devs:            r.DevsTotal,
		ChurnMode:       cfg.Churn.String(),
		Vector:          cfg.Vector.String(),
		AttackMethod:    cfg.AttackMethod,
		AttackDuration:  cfg.AttackDuration,
		Seed:            cfg.Seed,
		ExploitAttempts: r.ExploitAttempts,
		Hijacked:        r.Hijacked,
		Infected:        r.Infected,
		Crashed:         r.Crashed,
		InfectionRate:   r.InfectionRate(),
		BotsRegistered:  r.BotsRegistered,
		BotsAtCommand:   r.BotsAtCommand,
		AttackIssuedAtS: r.AttackIssuedAt.Seconds(),
		DReceivedKbps:   r.DReceivedKbps,
		SinkBytes:       r.SinkBytes,
		DistinctSources: r.DistinctSources,
		ChurnDepartures: r.ChurnDepartures,
		ChurnRejoins:    r.ChurnRejoins,
		WeakCredDevs:    r.WeakCredDevs,
		CanaryDevs:      r.CanaryDevs,
		PreAttackMemGB:  r.Usage.PreAttackMemGB,
		AttackMemGB:     r.Usage.AttackMemGB,
		AttackTimeSecs:  r.Usage.AttackTimeSecs,
		Faults:          r.Faults,
		Obs:             r.Obs,
		Flows:           r.Flows,
		Phases:          r.Phases,
	}
	if includeDetail {
		run.PerSecondKbps = append(run.PerSecondKbps, r.PerSecondKbps...)
		if r.Timeline != nil {
			for _, e := range r.Timeline.Events() {
				run.Timeline = append(run.Timeline, Event{
					AtSecs: e.At.Seconds(), Kind: e.Kind, Actor: e.Actor,
				})
			}
		}
	}
	return run
}

// WriteJSON renders the run as indented JSON.
func (r Run) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// SeriesCSV renders a per-second rate series, one row per second.
func SeriesCSV(perSecondKbps []float64, startSec int64) string {
	var b strings.Builder
	b.WriteString("second,kbps\n")
	for i, v := range perSecondKbps {
		fmt.Fprintf(&b, "%d,%.3f\n", startSec+int64(i), v)
	}
	return b.String()
}

// TimelineCSV renders an event log.
func TimelineCSV(tl *metrics.Timeline) string {
	var b strings.Builder
	b.WriteString("at_s,kind,actor\n")
	if tl == nil {
		return b.String()
	}
	for _, e := range tl.Events() {
		fmt.Fprintf(&b, "%.6f,%s,%s\n", e.At.Seconds(), e.Kind, e.Actor)
	}
	return b.String()
}

// WindowStart reports the first second of the measurement window.
func WindowStart(r *core.Results) int64 {
	if r.AttackIssuedAt < 0 {
		return 0
	}
	return int64(r.AttackIssuedAt / sim.Second)
}
