package report

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"ddosim/internal/core"
	"ddosim/internal/metrics"
	"ddosim/internal/sim"
)

func sampleRun(t *testing.T) (core.Config, *core.Results) {
	t.Helper()
	cfg := core.DefaultConfig(6)
	cfg.SimDuration = 300 * sim.Second
	cfg.AttackDuration = 20
	cfg.RecruitTimeout = 60 * sim.Second
	s, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	return cfg, r
}

func TestJSONRoundTrip(t *testing.T) {
	cfg, r := sampleRun(t)
	run := FromResults(cfg, r, true)
	var buf bytes.Buffer
	if err := run.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Run
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Devs != 6 || back.Infected != 6 || back.DReceivedKbps != run.DReceivedKbps {
		t.Fatalf("round trip lost data: %+v", back)
	}
	if len(back.PerSecondKbps) != cfg.AttackDuration {
		t.Fatalf("series length = %d", len(back.PerSecondKbps))
	}
	if len(back.Timeline) == 0 {
		t.Fatal("timeline missing")
	}
	if back.ChurnMode != "no churn" || back.Vector != "memory-error" {
		t.Fatalf("config echo = %q %q", back.ChurnMode, back.Vector)
	}
}

func TestJSONWithoutDetail(t *testing.T) {
	cfg, r := sampleRun(t)
	run := FromResults(cfg, r, false)
	if run.PerSecondKbps != nil || run.Timeline != nil {
		t.Fatal("detail embedded despite includeDetail=false")
	}
	var buf bytes.Buffer
	if err := run.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "per_second_kbps") {
		t.Fatal("omitempty not applied")
	}
}

// TestPhaseSummaryGolden pins the kill-chain phase-latency summary
// (and the labeled flow aggregate) for the deterministic sample run.
// If an intentional simulation change shifts these numbers, re-capture
// by running with -v and pasting the printed values.
func TestPhaseSummaryGolden(t *testing.T) {
	_, r := sampleRun(t)
	phases, err := json.Marshal(r.Phases)
	if err != nil {
		t.Fatal(err)
	}
	const wantPhases = `[{"phase":"attack","count":6,"min_s":0.09418735,"mean_s":0.41978636566666666,"max_s":0.860094465,"total_s":2.518718194},{"phase":"exploit","count":6,"min_s":0,"mean_s":0,"max_s":0,"total_s":0},{"phase":"recruit","count":6,"min_s":0.008119215,"mean_s":1.1269767275,"max_s":3.09560186,"total_s":6.761860365}]`
	if string(phases) != wantPhases {
		t.Errorf("phase summary drifted:\n got %s\nwant %s", phases, wantPhases)
	}
	flows, err := json.Marshal(r.Flows)
	if err != nil {
		t.Fatal(err)
	}
	const wantFlows = `{"flows":102,"packets":10573,"bytes":5698702,"labels":[{"label":"attack","flows":6,"packets":10224,"bytes":5664096},{"label":"cnc","flows":60,"packets":150,"bytes":8580},{"label":"exploit","flows":36,"packets":199,"bytes":26026}]}`
	if string(flows) != wantFlows {
		t.Errorf("flow summary drifted:\n got %s\nwant %s", flows, wantFlows)
	}
	if mean, ok := r.MeanPhaseSecs("recruit"); !ok || mean <= 0 {
		t.Fatalf("MeanPhaseSecs(recruit) = %v, %v", mean, ok)
	}
	if _, ok := r.MeanPhaseSecs("no-such-phase"); ok {
		t.Fatal("MeanPhaseSecs invented a phase")
	}
}

func TestSeriesCSV(t *testing.T) {
	csv := SeriesCSV([]float64{1.5, 2.5}, 10)
	want := "second,kbps\n10,1.500\n11,2.500\n"
	if csv != want {
		t.Fatalf("csv = %q", csv)
	}
}

func TestTimelineCSV(t *testing.T) {
	tl := metrics.NewTimeline()
	tl.Record(1500*sim.Millisecond, "infected", "dev-1")
	csv := TimelineCSV(tl)
	if !strings.Contains(csv, "1.500000,infected,dev-1") {
		t.Fatalf("csv = %q", csv)
	}
	if got := TimelineCSV(nil); got != "at_s,kind,actor\n" {
		t.Fatalf("nil timeline csv = %q", got)
	}
}

func TestWindowStart(t *testing.T) {
	_, r := sampleRun(t)
	if got := WindowStart(r); got <= 0 {
		t.Fatalf("window start = %d", got)
	}
	if got := WindowStart(&core.Results{AttackIssuedAt: -1}); got != 0 {
		t.Fatalf("unissued window start = %d", got)
	}
}
