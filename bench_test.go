// Package bench holds the repository-level benchmark harness: one
// benchmark per paper artifact (Fig. 2, Fig. 3, Table I, Fig. 4) at
// reduced scale — the full-scale regeneration lives in
// cmd/experiments — plus ablation benches for the design choices
// DESIGN.md §5 calls out. Benchmarks report the experiment's headline
// metric via b.ReportMetric, so `go test -bench=.` doubles as a
// shape check.
package bench

import (
	"strconv"
	"testing"

	"ddosim/ddosim"
	"ddosim/internal/hardware"
)

// benchConfig shrinks a paper configuration to benchmark scale.
func benchConfig(devs int) ddosim.Config {
	cfg := ddosim.DefaultConfig(devs)
	cfg.SimDuration = 300 * ddosim.Second
	cfg.AttackDuration = 30
	cfg.RecruitTimeout = 60 * ddosim.Second
	return cfg
}

func runOnce(b *testing.B, cfg ddosim.Config) *ddosim.Results {
	b.Helper()
	r, err := ddosim.Run(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return r
}

// BenchmarkFigure2 regenerates Fig. 2's sweep (received rate vs fleet
// size × churn mode) at benchmark scale.
func BenchmarkFigure2(b *testing.B) {
	for _, devs := range []int{10, 30, 50} {
		for _, mode := range []ddosim.ChurnMode{ddosim.ChurnNone, ddosim.ChurnStatic, ddosim.ChurnDynamic} {
			name := modeName(mode) + "/devs-" + strconv.Itoa(devs)
			b.Run(name, func(b *testing.B) {
				var kbps float64
				for i := 0; i < b.N; i++ {
					cfg := benchConfig(devs)
					cfg.Seed = int64(i + 1)
					cfg.Churn = mode
					kbps = runOnce(b, cfg).DReceivedKbps
				}
				b.ReportMetric(kbps, "D_received_kbps")
			})
		}
	}
}

// BenchmarkFigure3 regenerates Fig. 3's duration sweep at benchmark
// scale.
func BenchmarkFigure3(b *testing.B) {
	for _, devs := range []int{20, 40} {
		for _, duration := range []int{30, 60, 120} {
			b.Run("devs-"+strconv.Itoa(devs)+"/dur-"+strconv.Itoa(duration), func(b *testing.B) {
				var kbps float64
				for i := 0; i < b.N; i++ {
					cfg := benchConfig(devs)
					cfg.Seed = int64(i + 1)
					cfg.AttackDuration = duration
					kbps = runOnce(b, cfg).DReceivedKbps
				}
				b.ReportMetric(kbps, "D_received_kbps")
			})
		}
	}
}

// BenchmarkTable1 regenerates Table I's resource rows at benchmark
// scale.
func BenchmarkTable1(b *testing.B) {
	for _, devs := range []int{20, 40, 70} {
		b.Run("devs-"+strconv.Itoa(devs), func(b *testing.B) {
			var pre, attack, secs float64
			for i := 0; i < b.N; i++ {
				cfg := benchConfig(devs)
				cfg.Seed = int64(i + 1)
				u := runOnce(b, cfg).Usage
				pre, attack, secs = u.PreAttackMemGB, u.AttackMemGB, u.AttackTimeSecs
			}
			b.ReportMetric(pre, "pre_attack_GB")
			b.ReportMetric(attack, "attack_GB")
			b.ReportMetric(secs, "attack_time_s")
		})
	}
}

// BenchmarkFigure4 regenerates the validation comparison at benchmark
// scale: same devices on both substrates.
func BenchmarkFigure4(b *testing.B) {
	for _, devs := range []int{5, 12, 19} {
		b.Run("devs-"+strconv.Itoa(devs), func(b *testing.B) {
			var ddosimKbps, hwKbps float64
			for i := 0; i < b.N; i++ {
				cfg := benchConfig(devs)
				cfg.Seed = int64(i + 1)
				s, err := ddosim.New(cfg)
				if err != nil {
					b.Fatal(err)
				}
				rates := make([]int64, 0, devs)
				for _, d := range s.Devs() {
					rates = append(rates, int64(d.Rate()))
				}
				r, err := s.Run()
				if err != nil {
					b.Fatal(err)
				}
				ddosimKbps = r.DReceivedKbps

				hw := hardware.DefaultConfig(devs)
				hw.Seed = int64(i + 1)
				hw.AttackSecs = cfg.AttackDuration
				hw.RatesBps = rates
				hwKbps = hardware.Run(hw).AvgReceivedKbps
			}
			b.ReportMetric(ddosimKbps, "ddosim_kbps")
			b.ReportMetric(hwKbps, "hardware_kbps")
		})
	}
}

// BenchmarkAblationQueueSize varies the drop-tail queue depth — the
// source of Fig. 2's concavity under saturation.
func BenchmarkAblationQueueSize(b *testing.B) {
	for _, queue := range []int{10, 100, 1000} {
		b.Run("queue-"+strconv.Itoa(queue), func(b *testing.B) {
			var kbps float64
			for i := 0; i < b.N; i++ {
				cfg := benchConfig(40)
				cfg.Seed = int64(i + 1)
				cfg.DevQueueLimit = queue
				cfg.TServerDownlink = 5 * ddosim.Mbps // force saturation
				kbps = runOnce(b, cfg).DReceivedKbps
			}
			b.ReportMetric(kbps, "D_received_kbps")
		})
	}
}

// BenchmarkAblationRamp toggles the host-task-queuing ramp — the
// mechanism behind Fig. 3's duration effect. With the ramp off, the
// duration effect disappears (short and long attacks average the
// same).
func BenchmarkAblationRamp(b *testing.B) {
	for _, jitter := range []ddosim.Time{0, 150 * ddosim.Millisecond, 500 * ddosim.Millisecond} {
		b.Run("jitter-"+strconv.Itoa(int(jitter/ddosim.Millisecond))+"ms", func(b *testing.B) {
			var kbps float64
			for i := 0; i < b.N; i++ {
				cfg := benchConfig(30)
				cfg.Seed = int64(i + 1)
				cfg.StartJitterPerDev = jitter
				kbps = runOnce(b, cfg).DReceivedKbps
			}
			b.ReportMetric(kbps, "D_received_kbps")
		})
	}
}

// BenchmarkAblationDataRate compares the paper's 100–500 kbps uniform
// range against a degenerate fixed-rate fleet.
func BenchmarkAblationDataRate(b *testing.B) {
	cases := []struct {
		name     string
		min, max ddosim.DataRate
	}{
		{"range-100-500k", 100 * ddosim.Kbps, 500 * ddosim.Kbps},
		{"fixed-300k", 300 * ddosim.Kbps, 300 * ddosim.Kbps},
		{"fixed-500k", 500 * ddosim.Kbps, 500 * ddosim.Kbps},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			var kbps float64
			for i := 0; i < b.N; i++ {
				cfg := benchConfig(30)
				cfg.Seed = int64(i + 1)
				cfg.MinDevRate, cfg.MaxDevRate = c.min, c.max
				kbps = runOnce(b, cfg).DReceivedKbps
			}
			b.ReportMetric(kbps, "D_received_kbps")
		})
	}
}

// BenchmarkAblationChurnEpoch varies dynamic churn's re-evaluation
// period around the paper's 20 s.
func BenchmarkAblationChurnEpoch(b *testing.B) {
	for _, epoch := range []ddosim.Time{10 * ddosim.Second, 20 * ddosim.Second, 40 * ddosim.Second} {
		b.Run("epoch-"+strconv.Itoa(int(epoch/ddosim.Second))+"s", func(b *testing.B) {
			var kbps float64
			for i := 0; i < b.N; i++ {
				cfg := benchConfig(40)
				cfg.Seed = int64(i + 1)
				cfg.Churn = ddosim.ChurnDynamic
				cfg.ChurnEpoch = epoch
				kbps = runOnce(b, cfg).DReceivedKbps
			}
			b.ReportMetric(kbps, "D_received_kbps")
		})
	}
}

// BenchmarkAblationCanary sweeps the stack-protector deployment
// fraction: recruitment (and thus attack magnitude) degrades linearly
// with canary coverage.
func BenchmarkAblationCanary(b *testing.B) {
	for _, frac := range []float64{0, 0.5, 1.0} {
		b.Run("canary-"+strconv.FormatFloat(frac, 'f', 1, 64), func(b *testing.B) {
			var kbps float64
			var infected int
			for i := 0; i < b.N; i++ {
				cfg := benchConfig(20)
				cfg.Seed = int64(i + 1)
				cfg.CanaryFraction = frac
				r := runOnce(b, cfg)
				kbps, infected = r.DReceivedKbps, r.Infected
			}
			b.ReportMetric(kbps, "D_received_kbps")
			b.ReportMetric(float64(infected), "infected")
		})
	}
}

// BenchmarkRecruitVectors compares time-to-recruitment cost of the
// two vectors at equal fleet size.
func BenchmarkRecruitVectors(b *testing.B) {
	vectors := []struct {
		name string
		v    ddosim.RecruitVector
	}{
		{"memory-error", ddosim.VectorMemoryError},
		{"credentials", ddosim.VectorCredentials},
	}
	for _, vec := range vectors {
		b.Run(vec.name, func(b *testing.B) {
			var infected int
			for i := 0; i < b.N; i++ {
				cfg := benchConfig(10)
				cfg.Seed = int64(i + 1)
				cfg.Vector = vec.v
				if vec.v == ddosim.VectorCredentials {
					cfg.SimDuration = 600 * ddosim.Second
					cfg.RecruitTimeout = 400 * ddosim.Second
					cfg.ScanPeriod = ddosim.Second
				}
				infected = runOnce(b, cfg).Infected
			}
			b.ReportMetric(float64(infected), "infected")
		})
	}
}

// BenchmarkEndToEndKillChain measures the cost of one complete
// build-exploit-infect-flood-measure cycle — the simulator's
// fundamental unit of work.
func BenchmarkEndToEndKillChain(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := benchConfig(10)
		cfg.Seed = int64(i + 1)
		r := runOnce(b, cfg)
		if r.Infected != 10 {
			b.Fatalf("infected = %d", r.Infected)
		}
	}
}

func modeName(m ddosim.ChurnMode) string {
	switch m {
	case ddosim.ChurnNone:
		return "none"
	case ddosim.ChurnStatic:
		return "static"
	default:
		return "dynamic"
	}
}
